//===- tests/codegen/CodeGenTest.cpp - Codegen and machine simulation ----===//

#include "codegen/LoopCodeGen.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "machine/Simulator.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ardf;

namespace {

/// Generates, simulates, and cross-checks machine code against the
/// reference interpreter on the same inputs. Returns the simulator for
/// stat inspection.
MachineSimulator runAndCheck(const char *Source, const CodeGenOptions &Opts,
                             const std::map<std::string, int64_t> &Scalars =
                                 {},
                             uint64_t Seed = 5) {
  Program P = parseOrDie(Source);
  CodeGenResult CG = generateLoopCode(P, Opts);

  Interpreter Ref(P);
  MachineSimulator Sim(CG.Prog);
  for (const auto &[Name, Value] : Scalars) {
    Ref.setScalar(Name, Value);
    auto It = CG.ScalarRegs.find(Name);
    if (It != CG.ScalarRegs.end())
      Sim.setReg(It->second, Value);
  }
  for (const char *Arr : {"A", "B", "C"}) {
    Ref.seedArray(Arr, 96, Seed);
    for (int64_t K = 0; K != 96; ++K)
      Sim.setArrayCell(Arr, K, Ref.arrayCell(Arr, K));
  }
  Ref.run();
  Sim.run();

  EXPECT_EQ(Sim.memory(), Ref.state().Arrays) << Source;
  return Sim;
}

} // namespace

TEST(MachineTest, BasicExecution) {
  MachineProgram Prog;
  Prog.emit({.Op = MOpcode::LoadImm, .Dst = 0, .Imm = 7});
  Prog.emit({.Op = MOpcode::LoadImm, .Dst = 1, .Imm = 5});
  Prog.emit({.Op = MOpcode::Add, .Dst = 2, .Src1 = 0, .Src2 = 1});
  Prog.emit({.Op = MOpcode::LoadImm, .Dst = 3, .Imm = 2});
  Prog.emit({.Op = MOpcode::Store, .Src1 = 3, .Src2 = 2, .Array = "A"});
  Prog.emit({.Op = MOpcode::Halt});
  MachineSimulator Sim(Prog);
  Sim.run();
  EXPECT_EQ(Sim.arrayCell("A", 2), 12);
  EXPECT_EQ(Sim.stats().Stores, 1u);
}

TEST(MachineTest, RotateWindow) {
  MachineProgram Prog;
  for (int R = 0; R != 3; ++R)
    Prog.emit({.Op = MOpcode::LoadImm, .Dst = R, .Imm = R + 10});
  Prog.emit({.Op = MOpcode::Rotate, .Src1 = 3, .Imm = 0});
  Prog.emit({.Op = MOpcode::Halt});
  MachineSimulator Sim(Prog);
  Sim.run();
  // r1 = old r0, r2 = old r1.
  EXPECT_EQ(Sim.reg(1), 10);
  EXPECT_EQ(Sim.reg(2), 11);
  EXPECT_EQ(Sim.stats().Rotates, 1u);
  EXPECT_EQ(Sim.stats().Moves, 0u);
}

TEST(MachineTest, Listing) {
  MachineProgram Prog;
  Prog.emit({.Op = MOpcode::LabelDef, .Label = 0});
  Prog.emit({.Op = MOpcode::Load, .Dst = 1, .Src1 = 0, .Array = "A"});
  Prog.emit({.Op = MOpcode::Branch, .Label = 0});
  std::ostringstream OS;
  Prog.print(OS);
  EXPECT_NE(OS.str().find("L0:"), std::string::npos);
  EXPECT_NE(OS.str().find("load r1, A(r0)"), std::string::npos);
}

TEST(CodeGenTest, ConventionalMatchesInterpreter) {
  runAndCheck("do i = 1, 50 { A[i] = B[i] * 2 + x; }", {}, {{"x", 3}});
}

TEST(CodeGenTest, ConditionalsMatch) {
  runAndCheck(R"(
    do i = 1, 50 {
      if (A[i] > 0) { B[i] = A[i]; } else { B[i] = -A[i]; }
    })",
              {});
}

TEST(CodeGenTest, NestedLoopsMatch) {
  runAndCheck("do j = 1, 6 { do i = 1, 5 { A[i + 6 * j] = i + j; } }", {});
}

TEST(CodeGenTest, Fig5ConventionalLoadCount) {
  CodeGenOptions Opts;
  MachineSimulator Sim =
      runAndCheck("do i = 1, 1000 { A[i+2] = A[i] + x; }", Opts, {{"x", 1}});
  // One load and one store per iteration (Fig. 5 (ii)).
  EXPECT_EQ(Sim.stats().Loads, 1000u);
  EXPECT_EQ(Sim.stats().Stores, 1000u);
}

TEST(CodeGenTest, Fig5PipelinedEliminatesLoads) {
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Moves;
  MachineSimulator Sim =
      runAndCheck("do i = 1, 1000 { A[i+2] = A[i] + x; }", Opts, {{"x", 1}});
  // Only the two pipeline preloads remain (Fig. 5 (iii)); progression
  // costs two moves per iteration plus the stage-0 capture.
  EXPECT_EQ(Sim.stats().Loads, 2u);
  EXPECT_EQ(Sim.stats().Stores, 1000u);
  EXPECT_GE(Sim.stats().Moves, 2000u);
}

TEST(CodeGenTest, Fig5RotatingRegistersAvoidMoves) {
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Rotate;
  MachineSimulator Sim =
      runAndCheck("do i = 1, 1000 { A[i+2] = A[i] + x; }", Opts, {{"x", 1}});
  EXPECT_EQ(Sim.stats().Loads, 2u);
  EXPECT_EQ(Sim.stats().Rotates, 1000u);
}

TEST(CodeGenTest, PipelinedCheaperInCycles) {
  const char *Source = "do i = 1, 1000 { A[i+2] = A[i] + x; }";
  CodeGenOptions Conv;
  CodeGenOptions Rot;
  Rot.Mode = PipelineMode::Rotate;
  MachineSimulator SConv = runAndCheck(Source, Conv, {{"x", 1}});
  MachineSimulator SRot = runAndCheck(Source, Rot, {{"x", 1}});
  EXPECT_LT(SRot.stats().Cycles, SConv.stats().Cycles);
}

TEST(CodeGenTest, PipelinedConditionalReuseCorrect) {
  // Reuse under control flow: the conditional use reads the pipeline.
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Moves;
  runAndCheck(R"(
    do i = 1, 60 {
      A[i+1] = B[i] + 1;
      if (B[i] > 0) { C[i] = A[i]; }
    })",
              Opts);
}

TEST(CodeGenTest, UseGeneratorRefreshesStage) {
  // Both branches read A[i]; join reuse must see the refreshed stage.
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Moves;
  runAndCheck(R"(
    do i = 1, 60 {
      if (B[i] > 0) { C[i] = A[i]; } else { C[i] = A[i] * 2; }
      D_[i] = 0;
    })",
              Opts);
}

TEST(CodeGenTest, PipelineNotesEmitted) {
  Program P = parseOrDie("do i = 1, 100 { A[i+2] = A[i] + x; }");
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Moves;
  CodeGenResult CG = generateLoopCode(P, Opts);
  EXPECT_EQ(CG.PipelineCount, 1u);
  EXPECT_EQ(CG.TotalStages, 3u);
  ASSERT_EQ(CG.Notes.size(), 1u);
  EXPECT_NE(CG.Notes[0].find("3 stage(s)"), std::string::npos);
}

TEST(CodeGenTest, SymbolicBoundFromRegister) {
  Program P = parseOrDie("do i = 1, N { A[i] = i; }");
  CodeGenResult CG = generateLoopCode(P, {});
  MachineSimulator Sim(CG.Prog);
  Sim.setReg(CG.ScalarRegs.at("N"), 9);
  Sim.run();
  EXPECT_EQ(Sim.arrayCell("A", 9), 9);
  EXPECT_EQ(Sim.arrayCell("A", 10), 0);
  EXPECT_EQ(Sim.stats().Stores, 9u);
}

TEST(CodeGenTest, MultiDimAddressing) {
  runAndCheck("array A[8, 12];\n"
              "do i = 1, 6 { A[i, 3] = A[i, 2] + 1; }",
              {});
}

TEST(CodeGenTest, PipelineRegisterBudget) {
  // Two candidate pipelines (3 + 2 stages); a budget of 3 keeps only
  // the higher-priority one and the code still computes correctly.
  const char *Source =
      "do i = 1, 200 { A[i+2] = A[i] + x; B[i+1] = B[i] * 2; }";
  CodeGenOptions Opts;
  Opts.Mode = PipelineMode::Moves;
  Opts.MaxPipelineRegisters = 3;
  MachineSimulator Sim = runAndCheck(Source, Opts, {{"x", 1}});
  Program P = parseOrDie(Source);
  CodeGenResult CG = generateLoopCode(P, Opts);
  EXPECT_EQ(CG.PipelineCount, 1u);
  EXPECT_LE(CG.TotalStages, 3u);
  // One array stays in memory: loads land between the all-pipelined
  // (handful) and conventional (400) extremes.
  EXPECT_GT(Sim.stats().Loads, 100u);
  EXPECT_LT(Sim.stats().Loads, 400u);

  CodeGenOptions Unlimited;
  Unlimited.Mode = PipelineMode::Moves;
  MachineSimulator SimAll = runAndCheck(Source, Unlimited, {{"x", 1}});
  EXPECT_LT(SimAll.stats().Loads, 10u);
}
