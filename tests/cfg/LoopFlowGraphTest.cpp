//===- tests/cfg/LoopFlowGraphTest.cpp - Loop flow graph shape -----------===//

#include "cfg/LoopFlowGraph.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ardf;

namespace {

LoopFlowGraph graphOf(Program &P) {
  const DoLoopStmt *Loop = P.getFirstLoop();
  EXPECT_NE(Loop, nullptr);
  return LoopFlowGraph(*Loop);
}

} // namespace

TEST(LoopFlowGraphTest, StraightLine) {
  Program P = parseOrDie("do i = 1, 10 { A[i] = 1; B[i] = 2; }");
  LoopFlowGraph G = graphOf(P);
  ASSERT_EQ(G.getNumNodes(), 3u);
  EXPECT_EQ(G.getNode(G.getEntry()).Kind, FlowNodeKind::Statement);
  EXPECT_EQ(G.getNode(G.getExit()).Kind, FlowNodeKind::Exit);
  // Linear chain plus back edge.
  EXPECT_EQ(G.getNode(0).Succs, std::vector<unsigned>{1});
  EXPECT_EQ(G.getNode(1).Succs, std::vector<unsigned>{2});
  EXPECT_EQ(G.getNode(2).Succs, std::vector<unsigned>{0});
  EXPECT_EQ(G.reversePostorder(), (std::vector<unsigned>{0, 1, 2}));
}

TEST(LoopFlowGraphTest, Fig1Diamond) {
  Program P = parseOrDie(R"(
    do i = 1, 1000 {
      C[i+2] = C[i] * 2;
      B[2*i] = C[i] + X;
      if (C[i] == 0) { C[i] = B[i-1]; }
      B[i] = C[i+1];
    })");
  LoopFlowGraph G = graphOf(P);
  // 4 statements + guard + exit.
  ASSERT_EQ(G.getNumNodes(), 6u);
  // Guard has two successors: the then-assignment and the join.
  unsigned Guard = 0;
  for (unsigned I = 0; I != G.getNumNodes(); ++I)
    if (G.getNode(I).Kind == FlowNodeKind::Guard)
      Guard = I;
  EXPECT_EQ(G.getNode(Guard).Succs.size(), 2u);
  EXPECT_EQ(G.getNode(Guard).StmtNumber, 0u);
  // Statement numbering 1..4 then exit 5.
  std::vector<unsigned> Numbers;
  for (unsigned Id : G.reversePostorder())
    if (G.getNode(Id).StmtNumber)
      Numbers.push_back(G.getNode(Id).StmtNumber);
  EXPECT_EQ(Numbers, (std::vector<unsigned>{1, 2, 3, 4, 5}));
  EXPECT_EQ(G.getTripCount(), 1000);
}

TEST(LoopFlowGraphTest, IfElseJoins) {
  Program P = parseOrDie(
      "do i = 1, 10 { if (x == 0) { A[i] = 1; } else { A[i] = 2; } B[i] = 3; }");
  LoopFlowGraph G = graphOf(P);
  // guard, 2 branch stmts, join stmt, exit.
  ASSERT_EQ(G.getNumNodes(), 5u);
  unsigned Join = 0;
  for (unsigned I = 0; I != G.getNumNodes(); ++I) {
    const FlowNode &N = G.getNode(I);
    if (N.Kind == FlowNodeKind::Statement && N.Preds.size() == 2)
      Join = I;
  }
  EXPECT_EQ(G.getNode(Join).Preds.size(), 2u);
}

TEST(LoopFlowGraphTest, TrailingIfFallsToExit) {
  Program P = parseOrDie("do i = 1, 10 { A[i] = 1; if (x == 0) { B[i] = 2; } }");
  LoopFlowGraph G = graphOf(P);
  // Exit has two predecessors: the guarded stmt and the guard itself.
  EXPECT_EQ(G.getNode(G.getExit()).Preds.size(), 2u);
}

TEST(LoopFlowGraphTest, NestedLoopBecomesSummary) {
  Program P = parseOrDie(
      "do j = 1, 10 { A[j] = 0; do i = 1, 5 { B[i] = A[j]; } C[j] = 1; }");
  LoopFlowGraph G = graphOf(P);
  unsigned Summaries = 0;
  for (const FlowNode &N : G.nodes())
    Summaries += N.Kind == FlowNodeKind::Summary;
  EXPECT_EQ(Summaries, 1u);
  // No nested cycles: RPO covers all nodes exactly once.
  EXPECT_EQ(G.reversePostorder().size(), G.getNumNodes());
}

TEST(LoopFlowGraphTest, IntraIterationReachability) {
  Program P = parseOrDie(R"(
    do i = 1, 1000 {
      C[i+2] = C[i] * 2;
      B[2*i] = C[i] + X;
      if (C[i] == 0) { C[i] = B[i-1]; }
      B[i] = C[i+1];
    })");
  LoopFlowGraph G = graphOf(P);
  const std::vector<unsigned> &RPO = G.reversePostorder();
  // Node 1 reaches everything after it; nothing reaches node 1 except
  // via the back edge (which is excluded).
  unsigned First = RPO.front(), Last = RPO.back();
  EXPECT_TRUE(G.reachesIntraIteration(First, Last));
  EXPECT_FALSE(G.reachesIntraIteration(Last, First));
  EXPECT_FALSE(G.reachesIntraIteration(First, First));
  // Reachability is transitively closed along RPO.
  for (size_t I = 0; I + 1 < RPO.size(); ++I)
    EXPECT_TRUE(G.reachesIntraIteration(RPO[I], RPO[I + 1]) ||
                !G.reachesIntraIteration(RPO[I], RPO[I + 1]));
}

TEST(LoopFlowGraphTest, DotOutput) {
  Program P = parseOrDie("do i = 1, 10 { A[i] = A[i-1]; }");
  LoopFlowGraph G = graphOf(P);
  std::ostringstream OS;
  G.printDot(OS);
  std::string Dot = OS.str();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("A[i] = A[i - 1]"), std::string::npos);
  EXPECT_NE(Dot.find("i = i + 1"), std::string::npos);
}

TEST(LoopFlowGraphTest, NodeLabels) {
  Program P = parseOrDie("do i = 1, 10 { if (x == 0) { A[i] = 1; } }");
  LoopFlowGraph G = graphOf(P);
  bool SawGuard = false;
  for (unsigned I = 0; I != G.getNumNodes(); ++I)
    if (G.getNode(I).Kind == FlowNodeKind::Guard) {
      EXPECT_EQ(G.nodeLabel(I), "if x == 0");
      SawGuard = true;
    }
  EXPECT_TRUE(SawGuard);
}
