//===- tests/cfg/CfgTest.cpp - CFG, dominators, natural loops ------------===//
//
// Three layers of validation for cfg/Cfg.h:
//
//   1. Structural oracles on hand-written programs: block shapes,
//      back edges, natural-loop membership, and the nesting forest are
//      checked against what the structured source dictates.
//   2. A naive iterative dominator computation (set intersection to a
//      fixed point) recomputed inside the test and compared against the
//      Cooper-Harvey-Kennedy tree for every block pair.
//   3. An execution-order oracle: randomized structured programs run
//      both through the source interpreter (trace hook) and through a
//      test-local CFG executor; the sequence of executed source
//      assignments and the final scalar state must agree exactly.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

using namespace ardf;

namespace {

/// All statements of the source program (the CFG adds synthetic init /
/// guard / increment statements that must be filtered before comparing
/// against the interpreter's trace).
std::set<const Stmt *> sourceStmts(const Program &P) {
  std::set<const Stmt *> Out;
  forEachStmt(P.getStmts(), [&](const Stmt &S) { Out.insert(&S); });
  return Out;
}

/// The natural loop whose Source is the syntactic loop with induction
/// variable \p Iv (DO loops only; whiles are matched by pointer).
int loopWithIv(const Cfg &G, const std::string &Iv) {
  for (unsigned I = 0; I != G.loops().size(); ++I)
    if (const auto *DL = dyn_cast<DoLoopStmt>(G.loops()[I].Source))
      if (DL->getIndVar() == Iv)
        return static_cast<int>(I);
  return -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// Structure
//===----------------------------------------------------------------------===//

TEST(CfgTest, StraightLineIsAcyclic) {
  Program P = parseOrDie("x = 1; y = x + 2; A[1] = y;");
  Cfg G(P);
  EXPECT_TRUE(G.backEdges().empty());
  EXPECT_TRUE(G.loops().empty());
  // Every reachable block is dominated by the entry.
  for (unsigned B = 0; B != G.getNumBlocks(); ++B)
    if (G.isReachable(B))
      EXPECT_TRUE(G.dominates(G.getEntry(), B));
}

TEST(CfgTest, IfDiamondBranchesDoNotDominateJoin) {
  Program P = parseOrDie("x = 1;\n"
                         "if (x > 0) { y = 1; } else { y = 2; }\n"
                         "z = y;");
  Cfg G(P);
  EXPECT_TRUE(G.loops().empty());

  // Find the branch block and the blocks holding the two arms.
  unsigned CondBlock = Cfg::InvalidBlock;
  unsigned ThenBlock = Cfg::InvalidBlock, ElseBlock = Cfg::InvalidBlock;
  unsigned JoinBlock = Cfg::InvalidBlock;
  for (unsigned B = 0; B != G.getNumBlocks(); ++B) {
    const CfgBlock &Blk = G.getBlock(B);
    if (Blk.Cond && isa<IfStmt>(Blk.CondOwner)) {
      CondBlock = B;
      ASSERT_EQ(Blk.Succs.size(), 2u);
      ThenBlock = Blk.Succs[0];
      ElseBlock = Blk.Succs[1];
    }
  }
  ASSERT_NE(CondBlock, Cfg::InvalidBlock);
  ASSERT_EQ(G.getBlock(ThenBlock).Succs.size(), 1u);
  JoinBlock = G.getBlock(ThenBlock).Succs[0];
  EXPECT_EQ(G.getBlock(ElseBlock).Succs.size(), 1u);
  EXPECT_EQ(G.getBlock(ElseBlock).Succs[0], JoinBlock);

  EXPECT_TRUE(G.dominates(CondBlock, ThenBlock));
  EXPECT_TRUE(G.dominates(CondBlock, ElseBlock));
  EXPECT_TRUE(G.dominates(CondBlock, JoinBlock));
  EXPECT_FALSE(G.dominates(ThenBlock, JoinBlock));
  EXPECT_FALSE(G.dominates(ElseBlock, JoinBlock));
  EXPECT_EQ(G.immediateDominator(JoinBlock), CondBlock);
}

TEST(CfgTest, SingleDoLoopMakesOneNaturalLoop) {
  Program P = parseOrDie("do i = 1, 10 { A[i] = A[i] + 1; }");
  Cfg G(P);
  ASSERT_EQ(G.loops().size(), 1u);
  ASSERT_EQ(G.backEdges().size(), 1u);

  const NaturalLoop &L = G.loops()[0];
  EXPECT_EQ(L.Source, P.getFirstLoop());
  EXPECT_EQ(G.getBlock(L.Header).LoopHeaderOf, P.getFirstLoop());
  ASSERT_EQ(L.Latches.size(), 1u);

  // The back edge's target is the header, and the header dominates the
  // latch (the defining property of a back edge).
  auto [From, To] = G.backEdges()[0];
  EXPECT_EQ(To, L.Header);
  EXPECT_EQ(From, L.Latches[0]);
  EXPECT_TRUE(G.dominates(To, From));

  // Counted loop without break: the only exit is the header test.
  ASSERT_EQ(L.ExitEdges.size(), 1u);
  EXPECT_EQ(L.ExitEdges[0].first, L.Header);

  // The header dominates every member block.
  for (unsigned B : L.Blocks)
    EXPECT_TRUE(G.dominates(L.Header, B));
}

TEST(CfgTest, WhileLoopIsDiscoveredWithSource) {
  Program P = parseOrDie("i = 1; while (i <= 5) { x = x + i; i = i + 1; }");
  Cfg G(P);
  ASSERT_EQ(G.loops().size(), 1u);
  EXPECT_EQ(G.loops()[0].Source, P.getStmts()[1].get());
  EXPECT_TRUE(isa<WhileStmt>(G.loops()[0].Source));
}

TEST(CfgTest, NestedLoopsFormAForest) {
  Program P = parseOrDie("do i = 1, 4 {\n"
                         "  do j = 1, 4 {\n"
                         "    do k = 1, 4 { x = x + 1; }\n"
                         "  }\n"
                         "  do m = 1, 4 { y = y + 1; }\n"
                         "}\n"
                         "do n = 1, 4 { z = z + 1; }\n");
  Cfg G(P);
  ASSERT_EQ(G.loops().size(), 5u);

  int I = loopWithIv(G, "i"), J = loopWithIv(G, "j"), K = loopWithIv(G, "k");
  int M = loopWithIv(G, "m"), N = loopWithIv(G, "n");
  ASSERT_GE(I, 0);
  ASSERT_GE(J, 0);
  ASSERT_GE(K, 0);
  ASSERT_GE(M, 0);
  ASSERT_GE(N, 0);

  // Nesting forest matches the syntax.
  EXPECT_EQ(G.parentLoopOf(I), -1);
  EXPECT_EQ(G.parentLoopOf(J), I);
  EXPECT_EQ(G.parentLoopOf(K), J);
  EXPECT_EQ(G.parentLoopOf(M), I);
  EXPECT_EQ(G.parentLoopOf(N), -1);

  // Outermost-first: a loop never precedes its parent.
  for (unsigned L = 0; L != G.loops().size(); ++L)
    if (G.parentLoopOf(L) >= 0)
      EXPECT_LT(static_cast<unsigned>(G.parentLoopOf(L)), L);

  // Member containment follows nesting: every k-block is a j-block, and
  // every j-block an i-block.
  const NaturalLoop &LoopI = G.loops()[I];
  for (unsigned B : G.loops()[K].Blocks)
    EXPECT_TRUE(G.loops()[J].contains(B));
  for (unsigned B : G.loops()[J].Blocks)
    EXPECT_TRUE(LoopI.contains(B));
  // Sibling loops share no blocks.
  for (unsigned B : G.loops()[M].Blocks)
    EXPECT_FALSE(G.loops()[J].contains(B));

  // loopOf reports the innermost container.
  for (unsigned B : G.loops()[K].Blocks)
    EXPECT_EQ(G.loopOf(B), K);
}

TEST(CfgTest, BreakAddsAnExitEdge) {
  Program P = parseOrDie("do i = 1, 10 {\n"
                         "  A[i] = i;\n"
                         "  if (A[i] > 5) { break; }\n"
                         "  x = x + 1;\n"
                         "}\n");
  Cfg G(P);
  ASSERT_EQ(G.loops().size(), 1u);
  // Header test exit plus the break edge.
  EXPECT_EQ(G.loops()[0].ExitEdges.size(), 2u);
}

TEST(CfgTest, CodeAfterUnconditionalBreakIsUnreachable) {
  Program P = parseOrDie("do i = 1, 10 { break; x = 1; }");
  Cfg G(P);
  // The block holding `x = 1` must exist but be unreachable.
  bool FoundUnreachableAssign = false;
  for (unsigned B = 0; B != G.getNumBlocks(); ++B) {
    if (G.isReachable(B))
      continue;
    for (const Stmt *S : G.getBlock(B).Stmts)
      FoundUnreachableAssign |= isa<AssignStmt>(S);
  }
  EXPECT_TRUE(FoundUnreachableAssign);
}

TEST(CfgTest, BreakInInnerLoopExitsOnlyTheInnerLoop) {
  Program P = parseOrDie("do i = 1, 10 {\n"
                         "  do j = 1, 10 {\n"
                         "    if (A[j] > 0) { break; }\n"
                         "    A[j] = 1;\n"
                         "  }\n"
                         "  x = x + 1;\n"
                         "}\n");
  Cfg G(P);
  int I = loopWithIv(G, "i"), J = loopWithIv(G, "j");
  ASSERT_GE(I, 0);
  ASSERT_GE(J, 0);
  // The inner loop gains a break exit; the break's target stays inside
  // the outer loop, so the outer loop keeps its single header exit.
  EXPECT_EQ(G.loops()[J].ExitEdges.size(), 2u);
  EXPECT_EQ(G.loops()[I].ExitEdges.size(), 1u);
  for (auto [From, To] : G.loops()[J].ExitEdges)
    EXPECT_TRUE(G.loops()[I].contains(To));
}

TEST(CfgTest, DotRenderingSmoke) {
  Program P = parseOrDie("do i = 1, 3 { if (x > 0) { y = 1; } }");
  Cfg G(P);
  std::string Dot = G.toDot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  std::ostringstream OS;
  G.dump(OS);
  EXPECT_EQ(OS.str(), Dot);
}

//===----------------------------------------------------------------------===//
// Dominator oracle: naive iterative sets vs the CHK tree
//===----------------------------------------------------------------------===//

namespace {

/// Naive dominator sets: Dom(entry) = {entry}; Dom(b) = {b} union
/// intersection over reachable preds, to a fixed point.
std::vector<std::set<unsigned>> naiveDominators(const Cfg &G) {
  unsigned N = G.getNumBlocks();
  std::set<unsigned> All;
  for (unsigned B = 0; B != N; ++B)
    if (G.isReachable(B))
      All.insert(B);

  std::vector<std::set<unsigned>> Dom(N, All);
  Dom[G.getEntry()] = {G.getEntry()};
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : All) {
      if (B == G.getEntry())
        continue;
      std::set<unsigned> Meet = All;
      for (unsigned Pred : G.getBlock(B).Preds) {
        if (!G.isReachable(Pred))
          continue;
        std::set<unsigned> Next;
        for (unsigned D : Meet)
          if (Dom[Pred].count(D))
            Next.insert(D);
        Meet = std::move(Next);
      }
      Meet.insert(B);
      if (Meet != Dom[B]) {
        Dom[B] = std::move(Meet);
        Changed = true;
      }
    }
  }
  return Dom;
}

void expectDominatorsMatchNaive(const std::string &Source) {
  Program P = parseOrDie(Source);
  Cfg G(P);
  std::vector<std::set<unsigned>> Dom = naiveDominators(G);
  for (unsigned A = 0; A != G.getNumBlocks(); ++A)
    for (unsigned B = 0; B != G.getNumBlocks(); ++B) {
      bool Naive = G.isReachable(A) && G.isReachable(B) && Dom[B].count(A);
      if (A == B)
        Naive = true; // dominates() is reflexive even when unreachable
      EXPECT_EQ(G.dominates(A, B), Naive)
          << "blocks " << A << " -> " << B << " in:\n"
          << Source;
    }
  // Every back edge target dominates its source.
  for (auto [From, To] : G.backEdges())
    EXPECT_TRUE(G.dominates(To, From));
}

} // namespace

TEST(CfgDominatorTest, MatchesNaiveOnRepresentativePrograms) {
  expectDominatorsMatchNaive("x = 1;");
  expectDominatorsMatchNaive("do i = 1, 9 { A[i] = i; }");
  expectDominatorsMatchNaive(
      "if (x > 0) { y = 1; } else { y = 2; } z = y;");
  expectDominatorsMatchNaive("do i = 1, 9 {\n"
                             "  if (A[i] > 0) { break; }\n"
                             "  do j = 1, 4 { A[j] = A[j] + 1; }\n"
                             "}\n");
  expectDominatorsMatchNaive("i = 0;\n"
                             "while (i < 6) {\n"
                             "  if (x > 2) { x = 0; } else { x = x + 1; }\n"
                             "  i = i + 1;\n"
                             "}\n"
                             "do k = 1, 3 { do m = 1, 3 { y = y + 1; } }\n");
  expectDominatorsMatchNaive("do i = 1, 4 { break; x = 1; } y = 2;");
}

//===----------------------------------------------------------------------===//
// Execution-order oracle: CFG executor vs the source interpreter
//===----------------------------------------------------------------------===//

namespace {

/// Minimal CFG executor: walks blocks from the entry, evaluating the
/// same expression semantics as interp/Interpreter (1-D arrays only),
/// recording every executed source assignment in order.
class CfgExecutor {
public:
  CfgExecutor(const Cfg &G, const std::set<const Stmt *> &Source)
      : G(G), Source(Source) {}

  void run() {
    unsigned Block = G.getEntry();
    uint64_t Fuel = 1u << 20; // cycle guard: randomized loops are small
    while (Fuel--) {
      const CfgBlock &B = G.getBlock(Block);
      for (const Stmt *S : B.Stmts)
        exec(*S);
      if (B.Cond) {
        ASSERT_EQ(B.Succs.size(), 2u);
        Block = eval(*B.Cond) != 0 ? B.Succs[0] : B.Succs[1];
      } else if (!B.Succs.empty()) {
        ASSERT_EQ(B.Succs.size(), 1u);
        Block = B.Succs[0];
      } else {
        EXPECT_EQ(Block, G.getExit());
        return;
      }
    }
    FAIL() << "CFG execution did not terminate";
  }

  const std::vector<const Stmt *> &order() const { return Order; }
  const std::map<std::string, int64_t> &scalars() const { return Scalars; }

private:
  void exec(const Stmt &S) {
    const auto *AS = cast<AssignStmt>(&S);
    int64_t Value = eval(*AS->getRHS());
    if (const ArrayRefExpr *Target = AS->getArrayTarget())
      Arrays[Target->getName()][eval(*Target->getSubscript(0))] = Value;
    else
      Scalars[cast<VarRef>(AS->getLHS())->getName()] = Value;
    if (Source.count(&S))
      Order.push_back(&S);
  }

  int64_t eval(const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::IntLit:
      return cast<IntLit>(&E)->getValue();
    case Expr::Kind::VarRef:
      return Scalars[cast<VarRef>(&E)->getName()];
    case Expr::Kind::ArrayRef: {
      const auto *AR = cast<ArrayRefExpr>(&E);
      return Arrays[AR->getName()][eval(*AR->getSubscript(0))];
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(&E);
      int64_t V = eval(*UE->getOperand());
      return UE->getOp() == UnaryOpKind::Neg ? -V : !V;
    }
    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(&E);
      int64_t L = eval(*BE->getLHS());
      int64_t R = eval(*BE->getRHS());
      switch (BE->getOp()) {
      case BinaryOpKind::Add:
        return L + R;
      case BinaryOpKind::Sub:
        return L - R;
      case BinaryOpKind::Mul:
        return L * R;
      case BinaryOpKind::Div:
        return R == 0 ? 0 : L / R;
      case BinaryOpKind::Eq:
        return L == R;
      case BinaryOpKind::Ne:
        return L != R;
      case BinaryOpKind::Lt:
        return L < R;
      case BinaryOpKind::Le:
        return L <= R;
      case BinaryOpKind::Gt:
        return L > R;
      case BinaryOpKind::Ge:
        return L >= R;
      case BinaryOpKind::And:
        return L && R;
      case BinaryOpKind::Or:
        return L || R;
      }
      return 0;
    }
    }
    return 0;
  }

  const Cfg &G;
  const std::set<const Stmt *> &Source;
  std::map<std::string, int64_t> Scalars;
  std::map<std::string, std::map<int64_t, int64_t>> Arrays;
  std::vector<const Stmt *> Order;
};

/// Deterministic generator of structured programs exercising every
/// control form the builder lowers: ifs, DO loops with steps, counted
/// whiles, and guarded breaks.
struct OrderRng {
  uint64_t S;
  explicit OrderRng(uint64_t Seed) : S(Seed * 2654435761u + 17) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

void genStmts(OrderRng &R, unsigned Depth, unsigned LoopDepth, unsigned &Var,
              std::string &Out) {
  unsigned N = R.range(1, 3);
  for (unsigned I = 0; I != N; ++I) {
    switch (Depth == 0 ? 0 : R.range(0, 4)) {
    default: {
      // Assignment mixing scalars and a 1-D array.
      if (R.range(0, 1))
        Out += "A[v" + std::to_string(R.range(0, 2)) + "] = v" +
               std::to_string(R.range(0, 2)) + " + " +
               std::to_string(R.range(-5, 5)) + ";\n";
      else
        Out += "v" + std::to_string(Var++ % 3) + " = A[v0] + v" +
               std::to_string(R.range(0, 2)) + " * " +
               std::to_string(R.range(1, 3)) + ";\n";
      break;
    }
    case 1: {
      Out += "if (v" + std::to_string(R.range(0, 2)) + " > " +
             std::to_string(R.range(-3, 3)) + ") {\n";
      genStmts(R, Depth - 1, LoopDepth, Var, Out);
      if (R.range(0, 1)) {
        Out += "} else {\n";
        genStmts(R, Depth - 1, LoopDepth, Var, Out);
      }
      Out += "}\n";
      break;
    }
    case 2: {
      std::string Iv = "l" + std::to_string(LoopDepth);
      Out += "do " + Iv + " = " + std::to_string(R.range(1, 3)) + ", " +
             std::to_string(R.range(3, 7));
      if (R.range(0, 1))
        Out += ", " + std::to_string(R.range(1, 3));
      Out += " {\n";
      genStmts(R, Depth - 1, LoopDepth + 1, Var, Out);
      Out += "}\n";
      break;
    }
    case 3: {
      std::string Iv = "w" + std::to_string(LoopDepth);
      Out += Iv + " = 0;\n";
      Out += "while (" + Iv + " < " + std::to_string(R.range(1, 5)) + ") {\n";
      genStmts(R, Depth - 1, LoopDepth + 1, Var, Out);
      Out += Iv + " = " + Iv + " + 1;\n";
      Out += "}\n";
      break;
    }
    case 4: {
      if (LoopDepth == 0)
        break; // break outside a loop is not valid input
      Out += "if (v0 > " + std::to_string(R.range(-2, 4)) +
             ") { break; }\n";
      break;
    }
    }
  }
}

std::string orderProgram(uint64_t Seed) {
  OrderRng R(Seed);
  unsigned Var = 0;
  std::string Out = "v0 = " + std::to_string(R.range(-3, 3)) + ";\n" +
                    "v1 = " + std::to_string(R.range(-3, 3)) + ";\n" +
                    "v2 = " + std::to_string(R.range(-3, 3)) + ";\n";
  genStmts(R, 3, 0, Var, Out);
  return Out;
}

} // namespace

class CfgOrderOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CfgOrderOracle, CfgExecutionMatchesInterpreter) {
  std::string Source = orderProgram(GetParam());
  Program P = parseOrDie(Source);
  std::set<const Stmt *> Src = sourceStmts(P);

  // Interpreter side: record source assignments in execution order.
  std::vector<const Stmt *> InterpOrder;
  Interpreter I(P);
  I.setTraceHook([&](const Stmt &S) {
    if (isa<AssignStmt>(&S))
      InterpOrder.push_back(&S);
  });
  I.run();

  // CFG side.
  Cfg G(P);
  CfgExecutor Exec(G, Src);
  Exec.run();
  if (HasFatalFailure())
    FAIL() << "CFG executor aborted on:\n" << Source;

  EXPECT_EQ(Exec.order(), InterpOrder)
      << "execution order diverged (seed " << GetParam() << "):\n"
      << Source;

  // DO-loop induction variables are bookkeeping the two executions
  // handle differently (the CFG's synthetic latch increment runs one
  // step past the bound; the interpreter never materializes it), so
  // they are excluded from the observable-state comparison.
  std::map<std::string, int64_t> CfgScalars = Exec.scalars();
  std::map<std::string, int64_t> InterpScalars = I.state().Scalars;
  forEachStmt(P.getStmts(), [&](const Stmt &S) {
    if (const auto *DL = dyn_cast<DoLoopStmt>(&S)) {
      CfgScalars.erase(DL->getIndVar());
      InterpScalars.erase(DL->getIndVar());
    }
  });
  EXPECT_EQ(CfgScalars, InterpScalars)
      << "final scalar state diverged (seed " << GetParam() << "):\n"
      << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgOrderOracle,
                         ::testing::Range<uint64_t>(1, 81));
