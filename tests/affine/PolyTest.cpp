//===- tests/affine/PolyTest.cpp - Polynomial algebra --------------------===//

#include "affine/Poly.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

Poly sym(const char *S) { return Poly::symbol(S); }

} // namespace

TEST(PolyTest, ConstantsAndZero) {
  EXPECT_TRUE(Poly().isZero());
  EXPECT_TRUE(Poly::constant(0).isZero());
  Poly C = Poly::constant(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.getConstant(), 7);
  EXPECT_FALSE(sym("i").isConstant());
}

TEST(PolyTest, AdditionCancels) {
  Poly P = sym("i") + Poly::constant(2);
  Poly Q = P - sym("i");
  EXPECT_TRUE(Q.isConstant());
  EXPECT_EQ(Q.getConstant(), 2);
  EXPECT_TRUE((P - P).isZero());
}

TEST(PolyTest, Multiplication) {
  // (i + 1) * (i + 2) = i^2 + 3i + 2.
  Poly P = (sym("i") + Poly::constant(1)) * (sym("i") + Poly::constant(2));
  EXPECT_EQ(P.getCoeff(Monomial{"i", "i"}), 1);
  EXPECT_EQ(P.getCoeff(Monomial{"i"}), 3);
  EXPECT_EQ(P.getCoeff(Monomial{}), 2);
  EXPECT_EQ(P.degree(), 2u);
}

TEST(PolyTest, MonomialSortingIsCanonical) {
  Poly P = sym("a") * sym("b");
  Poly Q = sym("b") * sym("a");
  EXPECT_EQ(P, Q);
}

TEST(PolyTest, ScaledAndDividedBy) {
  Poly P = sym("i").scaled(4) + Poly::constant(6);
  std::optional<Poly> Half = P.dividedBy(2);
  ASSERT_TRUE(Half.has_value());
  EXPECT_EQ(Half->getCoeff(Monomial{"i"}), 2);
  EXPECT_EQ(Half->getCoeff(Monomial{}), 3);
  EXPECT_FALSE(P.dividedBy(4).has_value());
}

TEST(PolyTest, RatioToDetectsProportionality) {
  Poly N = sym("N");
  EXPECT_EQ(N.ratioTo(N), Rational(1));
  EXPECT_EQ(N.scaled(2).ratioTo(N), Rational(2));
  EXPECT_EQ(N.ratioTo(N.scaled(2)), Rational(1, 2));
  EXPECT_EQ(Poly().ratioTo(N), Rational(0));
  EXPECT_FALSE((N + Poly::constant(1)).ratioTo(N).has_value());
  EXPECT_FALSE(sym("M").ratioTo(N).has_value());
  // Mixed: (2N + 2) / (N + 1) == 2.
  Poly A = N.scaled(2) + Poly::constant(2);
  Poly B = N + Poly::constant(1);
  EXPECT_EQ(A.ratioTo(B), Rational(2));
}

TEST(PolyTest, SplitAffine) {
  // N*i + j + 3 w.r.t. i: A = N, B = j + 3.
  Poly P = sym("N") * sym("i") + sym("j") + Poly::constant(3);
  auto Split = P.splitAffine("i");
  ASSERT_TRUE(Split.has_value());
  EXPECT_EQ(Split->first, sym("N"));
  EXPECT_EQ(Split->second, sym("j") + Poly::constant(3));

  // i*i is not affine in i.
  EXPECT_FALSE((sym("i") * sym("i")).splitAffine("i").has_value());

  // But affine in an absent symbol: A = 0.
  auto Split2 = (sym("i") * sym("i")).splitAffine("j");
  ASSERT_TRUE(Split2.has_value());
  EXPECT_TRUE(Split2->first.isZero());
}

TEST(PolyTest, Substitution) {
  // (i + 1) with i := j + 2 gives j + 3.
  Poly P = sym("i") + Poly::constant(1);
  Poly Q = P.substituted("i", sym("j") + Poly::constant(2));
  EXPECT_EQ(Q, sym("j") + Poly::constant(3));
  // N*i with i := 2 gives 2N.
  Poly R = (sym("N") * sym("i")).substituted("i", Poly::constant(2));
  EXPECT_EQ(R, sym("N").scaled(2));
}

TEST(PolyTest, SymbolsAndMentions) {
  Poly P = sym("N") * sym("i") + sym("j");
  EXPECT_TRUE(P.mentions("N"));
  EXPECT_TRUE(P.mentions("j"));
  EXPECT_FALSE(P.mentions("k"));
  std::vector<std::string> Syms = P.symbols();
  EXPECT_EQ(Syms.size(), 3u);
}

TEST(PolyTest, Printing) {
  EXPECT_EQ(Poly().toString(), "0");
  EXPECT_EQ(Poly::constant(-3).toString(), "-3");
  Poly P = sym("N") * sym("i") + sym("j") - Poly::constant(1);
  EXPECT_EQ(P.toString(), "N*i + j - 1");
  EXPECT_EQ((sym("i").scaled(2)).toString(), "2*i");
}
