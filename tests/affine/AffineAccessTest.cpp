//===- tests/affine/AffineAccessTest.cpp - Affine subscript views --------===//

#include "affine/AffineAccess.h"
#include "frontend/Parser.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

/// Parses a single assignment and returns its target reference.
const ArrayRefExpr *targetOf(const Program &P) {
  const auto *AS = cast<AssignStmt>(P.getStmts().back().get());
  return AS->getArrayTarget();
}

} // namespace

TEST(AffineAccessTest, EvalToPoly) {
  Program P = parseOrDie("x = 2 * i + b - 1;");
  const auto *AS = cast<AssignStmt>(P.getStmts()[0].get());
  std::optional<Poly> Poly = evalToPoly(*AS->getRHS());
  ASSERT_TRUE(Poly.has_value());
  EXPECT_EQ(Poly->getCoeff(Monomial{"i"}), 2);
  EXPECT_EQ(Poly->getCoeff(Monomial{"b"}), 1);
  EXPECT_EQ(Poly->getCoeff(Monomial{}), -1);
}

TEST(AffineAccessTest, EvalRejectsArrayRefsAndComparisons) {
  Program P = parseOrDie("x = A[i] + 1; y = i == 0;");
  EXPECT_FALSE(
      evalToPoly(*cast<AssignStmt>(P.getStmts()[0].get())->getRHS()));
  EXPECT_FALSE(
      evalToPoly(*cast<AssignStmt>(P.getStmts()[1].get())->getRHS()));
}

TEST(AffineAccessTest, ExactDivisionOnly) {
  Program P = parseOrDie("x = (4 * i + 2) / 2; y = i / 2;");
  std::optional<Poly> Exact =
      evalToPoly(*cast<AssignStmt>(P.getStmts()[0].get())->getRHS());
  ASSERT_TRUE(Exact.has_value());
  EXPECT_EQ(Exact->getCoeff(Monomial{"i"}), 2);
  EXPECT_FALSE(
      evalToPoly(*cast<AssignStmt>(P.getStmts()[1].get())->getRHS()));
}

TEST(AffineAccessTest, OneDimensionalAffine) {
  Program P = parseOrDie("A[2 * i + 3] = 0;");
  std::optional<AffineAccess> A = makeAffineAccess(*targetOf(P), P, "i");
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Array, "A");
  EXPECT_EQ(A->A, Poly::constant(2));
  EXPECT_EQ(A->B, Poly::constant(3));
  EXPECT_FALSE(A->isLoopInvariant());
}

TEST(AffineAccessTest, LoopInvariantReference) {
  Program P = parseOrDie("A[5] = 0;");
  std::optional<AffineAccess> A = makeAffineAccess(*targetOf(P), P, "i");
  ASSERT_TRUE(A.has_value());
  EXPECT_TRUE(A->isLoopInvariant());
  EXPECT_EQ(A->B, Poly::constant(5));
}

TEST(AffineAccessTest, NonAffineRejected) {
  Program P = parseOrDie("A[i * i] = 0;");
  EXPECT_FALSE(makeAffineAccess(*targetOf(P), P, "i").has_value());
}

TEST(AffineAccessTest, MultiDimLinearizationMatchesFig4) {
  // X[i+1, j] with first-dimension size N linearizes to N*i + N + j.
  Program P = parseOrDie("array X[N, N];\nX[i + 1, j] = X[i, j];");
  std::optional<Poly> Lin = linearizeSubscripts(*targetOf(P), P);
  ASSERT_TRUE(Lin.has_value());
  Poly Expected = Poly::symbol("N") * Poly::symbol("i") + Poly::symbol("N") +
                  Poly::symbol("j");
  EXPECT_EQ(*Lin, Expected);

  // Affine in i: A = N, B = N + j (j is an enclosing-loop symbolic).
  std::optional<AffineAccess> A = makeAffineAccess(*targetOf(P), P, "i");
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->A, Poly::symbol("N"));
  EXPECT_EQ(A->B, Poly::symbol("N") + Poly::symbol("j"));
}

TEST(AffineAccessTest, MultiDimWithoutDeclRejected) {
  Program P = parseOrDie("X[i, j] = 0;");
  EXPECT_FALSE(linearizeSubscripts(*targetOf(P), P).has_value());
}

TEST(AffineAccessTest, ConstantReuseDistanceSimple) {
  // A[i+2] defines what A[i] uses two iterations later.
  Program P = parseOrDie("A[i + 2] = A[i];");
  const auto *AS = cast<AssignStmt>(P.getStmts()[0].get());
  const auto *Use = cast<ArrayRefExpr>(AS->getRHS());
  AffineAccess Def = *makeAffineAccess(*AS->getArrayTarget(), P, "i");
  AffineAccess UseA = *makeAffineAccess(*Use, P, "i");
  std::optional<Rational> D = constantReuseDistance(Def, UseA);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, Rational(2));
}

TEST(AffineAccessTest, ConstantReuseDistanceSymbolicFig4) {
  // X[i+1, j] -> X[i, j]: delta = N / N = 1 even with symbolic N.
  Program P = parseOrDie("array X[N, N];\nX[i + 1, j] = X[i, j];");
  const auto *AS = cast<AssignStmt>(P.getStmts().back().get());
  const auto *Use = cast<ArrayRefExpr>(AS->getRHS());
  AffineAccess Def = *makeAffineAccess(*AS->getArrayTarget(), P, "i");
  AffineAccess UseA = *makeAffineAccess(*Use, P, "i");
  std::optional<Rational> D = constantReuseDistance(Def, UseA);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, Rational(1));
}

TEST(AffineAccessTest, NoConstantDistanceForCoupledSubscripts) {
  // Z[i+1, j] vs Z[i, j-1] w.r.t. i alone: B differs by j-dependence.
  Program P = parseOrDie("array Z[N, N];\nZ[i + 1, j] = Z[i, j - 1];");
  const auto *AS = cast<AssignStmt>(P.getStmts().back().get());
  const auto *Use = cast<ArrayRefExpr>(AS->getRHS());
  AffineAccess Def = *makeAffineAccess(*AS->getArrayTarget(), P, "i");
  AffineAccess UseA = *makeAffineAccess(*Use, P, "i");
  EXPECT_FALSE(constantReuseDistance(Def, UseA).has_value());
}

TEST(AffineAccessTest, DifferentArraysNeverReuse) {
  Program P = parseOrDie("A[i] = B[i];");
  const auto *AS = cast<AssignStmt>(P.getStmts()[0].get());
  AffineAccess Def = *makeAffineAccess(*AS->getArrayTarget(), P, "i");
  AffineAccess UseA =
      *makeAffineAccess(*cast<ArrayRefExpr>(AS->getRHS()), P, "i");
  EXPECT_FALSE(constantReuseDistance(Def, UseA).has_value());
}

TEST(AffineAccessTest, ToStringForms) {
  Program P = parseOrDie("A[2 * i + 3] = 0;");
  AffineAccess A = *makeAffineAccess(*targetOf(P), P, "i");
  EXPECT_EQ(A.toString("i"), "A[(2)*i + 3]");
  Program Q = parseOrDie("B[7] = 0;");
  AffineAccess BInv = *makeAffineAccess(*targetOf(Q), Q, "i");
  EXPECT_EQ(BInv.toString("i"), "B[7]");
}
