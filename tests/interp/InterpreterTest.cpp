//===- tests/interp/InterpreterTest.cpp - Interpreter semantics ----------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(InterpreterTest, SimpleLoopComputes) {
  Program P = parseOrDie("do i = 1, 10 { A[i] = i * 2; }");
  Interpreter I(P);
  I.run();
  for (int64_t K = 1; K <= 10; ++K)
    EXPECT_EQ(I.arrayCell("A", K), 2 * K);
  EXPECT_EQ(I.stats().ArrayStores, 10u);
  EXPECT_EQ(I.stats().ArrayLoads, 0u);
  EXPECT_EQ(I.stats().LoopIterations, 10u);
}

TEST(InterpreterTest, LoadsCounted) {
  Program P = parseOrDie("do i = 1, 5 { A[i+1] = A[i] + A[i]; }");
  Interpreter I(P);
  I.run();
  EXPECT_EQ(I.stats().ArrayLoads, 10u);
  EXPECT_EQ(I.stats().ArrayStores, 5u);
}

TEST(InterpreterTest, Conditionals) {
  Program P = parseOrDie(R"(
    do i = 1, 10 {
      if (i <= 5) { A[i] = 1; } else { A[i] = 2; }
    })");
  Interpreter I(P);
  I.run();
  EXPECT_EQ(I.arrayCell("A", 3), 1);
  EXPECT_EQ(I.arrayCell("A", 8), 2);
}

TEST(InterpreterTest, ScalarPresetsAndShortCircuit) {
  Program P = parseOrDie("y = x > 2 && 1 / 0 == 0; z = x > 2 || w;");
  Interpreter I(P);
  I.setScalar("x", 5);
  I.run();
  // Division by zero evaluates to 0 (defined semantics); && forced it.
  EXPECT_EQ(I.scalar("y"), 1);
  EXPECT_EQ(I.scalar("z"), 1);
}

TEST(InterpreterTest, RecurrencePropagatesValues) {
  // Fibonacci-ish through memory.
  Program P = parseOrDie("A[1] = 1; A[2] = 1; "
                         "do i = 3, 10 { A[i] = A[i-1] + A[i-2]; }");
  Interpreter I(P);
  I.run();
  EXPECT_EQ(I.arrayCell("A", 10), 55);
}

TEST(InterpreterTest, MultiDimFlattening) {
  Program P = parseOrDie("array X[4, 8];\n"
                         "do i = 1, 3 { X[i, 2] = i; }");
  Interpreter I(P);
  I.run();
  // Row-major: X[i, 2] -> i * 8 + 2.
  EXPECT_EQ(I.arrayCell("X", 1 * 8 + 2), 1);
  EXPECT_EQ(I.arrayCell("X", 3 * 8 + 2), 3);
}

TEST(InterpreterTest, NegativeIndicesWork) {
  Program P = parseOrDie("do i = 1, 3 { A[i - 2] = i; }");
  Interpreter I(P);
  I.run();
  EXPECT_EQ(I.arrayCell("A", -1), 1);
  EXPECT_EQ(I.arrayCell("A", 0), 2);
}

TEST(InterpreterTest, SeededArrayDeterministic) {
  Program P = parseOrDie("x = 0;");
  Interpreter A(P), B(P);
  A.seedArray("D", 100, 42);
  B.seedArray("D", 100, 42);
  for (int64_t K = 0; K != 100; ++K)
    EXPECT_EQ(A.arrayCell("D", K), B.arrayCell("D", K));
  Interpreter C(P);
  C.seedArray("D", 100, 43);
  bool AnyDiff = false;
  for (int64_t K = 0; K != 100; ++K)
    AnyDiff |= A.arrayCell("D", K) != C.arrayCell("D", K);
  EXPECT_TRUE(AnyDiff);
}

TEST(InterpreterTest, DownwardLoop) {
  Program P = parseOrDie("do i = 5, 1, -1 { A[i] = 6 - i; }");
  Interpreter I(P);
  I.run();
  EXPECT_EQ(I.arrayCell("A", 1), 5);
  EXPECT_EQ(I.arrayCell("A", 5), 1);
  EXPECT_EQ(I.stats().LoopIterations, 5u);
}

TEST(InterpreterTest, SymbolicUpperBound) {
  Program P = parseOrDie("do i = 1, N { A[i] = 1; }");
  Interpreter I(P);
  I.setScalar("N", 7);
  I.run();
  EXPECT_EQ(I.stats().ArrayStores, 7u);
}

TEST(InterpreterTest, MachineStateEquality) {
  Program P = parseOrDie("do i = 1, 4 { A[i] = i; }");
  Interpreter A(P), B(P);
  A.run();
  B.run();
  EXPECT_EQ(A.state().Arrays, B.state().Arrays);
}
