//===- tests/transform/LoopUnrollTest.cpp - Unrolling transformation -----===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "transform/LoopUnroll.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

void checkEquivalent(const Program &Original, const Program &Transformed,
                     const std::map<std::string, int64_t> &Scalars = {}) {
  Interpreter A(Original), B(Transformed);
  for (const auto &[Name, Value] : Scalars) {
    A.setScalar(Name, Value);
    B.setScalar(Name, Value);
  }
  A.seedArray("A", 64, 3);
  B.seedArray("A", 64, 3);
  A.run();
  B.run();
  EXPECT_EQ(A.state().Arrays, B.state().Arrays)
      << "transformed:\n"
      << programToString(Transformed);
}

} // namespace

TEST(LoopUnrollTest, EvenFactor) {
  Program P = parseOrDie("do i = 1, 100 { A[i] = i * i; }");
  Program Q = unrollProgram(P, 4);
  checkEquivalent(P, Q);
  const auto *Main = cast<DoLoopStmt>(Q.getStmts()[0].get());
  EXPECT_EQ(Main->getStep(), 4);
  EXPECT_EQ(Main->getBody().size(), 4u);
  // 100 divides evenly: no remainder loop.
  EXPECT_EQ(Q.getStmts().size(), 1u);
}

TEST(LoopUnrollTest, RemainderLoop) {
  Program P = parseOrDie("do i = 1, 103 { A[i] = 2 * i; }");
  Program Q = unrollProgram(P, 4);
  ASSERT_EQ(Q.getStmts().size(), 2u);
  const auto *Rem = cast<DoLoopStmt>(Q.getStmts()[1].get());
  EXPECT_EQ(cast<IntLit>(Rem->getLower())->getValue(), 101);
  EXPECT_EQ(cast<IntLit>(Rem->getUpper())->getValue(), 103);
  checkEquivalent(P, Q);
}

TEST(LoopUnrollTest, RecurrencePreserved) {
  Program P = parseOrDie("A[1] = 1; A[2] = 1; "
                         "do i = 3, 30 { A[i] = A[i-1] + A[i-2]; }");
  // Non-normalized lower bound: not unrolled, program unchanged.
  Program Q = unrollProgram(P, 2);
  checkEquivalent(P, Q);
}

TEST(LoopUnrollTest, NormalizedRecurrence) {
  Program P = parseOrDie("do i = 1, 37 { A[i+2] = A[i] + A[i+1]; }");
  for (unsigned F : {2u, 3u, 5u}) {
    Program Q = unrollProgram(P, F);
    checkEquivalent(P, Q);
  }
}

TEST(LoopUnrollTest, ConditionalBodyUnrolls) {
  Program P = parseOrDie(R"(
    do i = 1, 50 {
      if (A[i] > 0) { B[i] = A[i]; } else { B[i] = -A[i]; }
    })");
  Program Q = unrollProgram(P, 2);
  checkEquivalent(P, Q);
}

TEST(LoopUnrollTest, SymbolicBoundNotUnrolled) {
  Program P = parseOrDie("do i = 1, N { A[i] = 1; }");
  const auto *Loop = P.getFirstLoop();
  EXPECT_FALSE(unrollLoop(*Loop, 2).has_value());
}

TEST(LoopUnrollTest, FactorLargerThanTrip) {
  Program P = parseOrDie("do i = 1, 3 { A[i] = 1; }");
  EXPECT_FALSE(unrollLoop(*P.getFirstLoop(), 4).has_value());
}

TEST(LoopUnrollTest, InductionVariableShifted) {
  Program P = parseOrDie("do i = 1, 8 { A[i] = i; }");
  Program Q = unrollProgram(P, 2);
  std::string Text = programToString(Q);
  EXPECT_NE(Text.find("A[i + 1] = i + 1;"), std::string::npos) << Text;
}
