//===- tests/transform/LoadElimTest.cpp - Redundant load elimination -----===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "transform/LoadElimination.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

std::pair<Interpreter, Interpreter>
checkEquivalent(const Program &Original, const Program &Transformed,
                const std::map<std::string, int64_t> &Scalars = {},
                uint64_t Seed = 11) {
  Interpreter A(Original), B(Transformed);
  for (const auto &[Name, Value] : Scalars) {
    A.setScalar(Name, Value);
    B.setScalar(Name, Value);
  }
  for (const char *Arr : {"A", "B", "C"}) {
    A.seedArray(Arr, 128, Seed);
    B.seedArray(Arr, 128, Seed);
  }
  A.run();
  B.run();
  EXPECT_EQ(A.state().Arrays, B.state().Arrays)
      << "original:\n"
      << programToString(Original) << "transformed:\n"
      << programToString(Transformed);
  return {std::move(A), std::move(B)};
}

} // namespace

TEST(LoadElimTest, Fig7StyleDefToUse) {
  // The def A[i+1] feeds the (conditional) use A[i] one iteration later.
  Program P = parseOrDie(R"(
    do i = 1, 1000 {
      if (A[i] > 0) { y = y + A[i]; }
      A[i+1] = i;
    })");
  LoadElimResult R = eliminateRedundantLoads(P);
  EXPECT_GE(R.LoadsEliminated, 1u);
  auto [IA, IB] = checkEquivalent(P, R.Transformed);
  EXPECT_EQ(IA.scalar("y"), IB.scalar("y"));
  EXPECT_LT(IB.stats().ArrayLoads, IA.stats().ArrayLoads);
}

TEST(LoadElimTest, SelfRecurrencePipelines) {
  // A[i+2] = A[i] + x: classic two-deep pipeline; in-loop loads vanish.
  Program P = parseOrDie("do i = 1, 1000 { A[i+2] = A[i] + x; }");
  LoadElimResult R = eliminateRedundantLoads(P);
  EXPECT_EQ(R.LoadsEliminated, 1u);
  auto [IA, IB] = checkEquivalent(P, R.Transformed, {{"x", 3}});
  EXPECT_EQ(IA.stats().ArrayLoads, 1000u);
  // Only the two preheader fills remain.
  EXPECT_EQ(IB.stats().ArrayLoads, 2u);
  EXPECT_EQ(IB.stats().ArrayStores, 1000u);
}

TEST(LoadElimTest, CommonSubexpressionWithinIteration) {
  // Two loads of C[i] in one iteration collapse to one.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = C[i] * 2;
      B[i] = C[i] + 1;
    })");
  LoadElimResult R = eliminateRedundantLoads(P);
  EXPECT_GE(R.LoadsEliminated, 1u);
  auto [IA, IB] = checkEquivalent(P, R.Transformed);
  EXPECT_EQ(IA.stats().ArrayLoads, 200u);
  EXPECT_EQ(IB.stats().ArrayLoads, 100u);
}

TEST(LoadElimTest, ConditionalKillBlocksReuse) {
  // The conditional def of C[i] kills availability of C[i+1]'s value on
  // one path: scalar replacement across the iteration is illegal and
  // must not happen (the flow-sensitivity claim, Section 5).
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      if (B[i] > 0) { C[i] = 0; }
      y = y + C[i];
    })");
  LoadElimResult R = eliminateRedundantLoads(P);
  // Whatever was or was not rewritten, behavior must match on inputs
  // exercising both branch directions.
  auto [IA, IB] = checkEquivalent(P, R.Transformed);
  EXPECT_EQ(IA.scalar("y"), IB.scalar("y"));
}

TEST(LoadElimTest, GuardUseParticipates) {
  // The guard's use of C[i] and the body's use share one load.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      if (C[i] == 0) { A[i] = C[i] + 5; }
    })");
  LoadElimResult R = eliminateRedundantLoads(P);
  EXPECT_GE(R.LoadsEliminated, 1u);
  checkEquivalent(P, R.Transformed);
}

TEST(LoadElimTest, Fig1FullExample) {
  // All three reuse patterns of Fig. 1 at once.
  Program P = parseOrDie(R"(
    do i = 1, 1000 {
      C[i+2] = C[i] * 2;
      B[2*i] = C[i] + x;
      if (C[i] == 0) { C[i] = B[i-1]; }
      B[i] = C[i+1];
    })");
  LoadElimResult R = eliminateRedundantLoads(P);
  EXPECT_GE(R.LoadsEliminated, 3u);
  auto [IA, IB] = checkEquivalent(P, R.Transformed, {{"x", 2}});
  EXPECT_LT(IB.stats().ArrayLoads, IA.stats().ArrayLoads);
}

TEST(LoadElimTest, DeepDistanceCapRespected) {
  Program P = parseOrDie("do i = 1, 100 { A[i+20] = A[i]; }");
  LoadElimOptions Opts;
  Opts.MaxDistance = 8;
  LoadElimResult R = eliminateRedundantLoads(P, Opts);
  EXPECT_EQ(R.LoadsEliminated, 0u);
  Opts.MaxDistance = 32;
  LoadElimResult R2 = eliminateRedundantLoads(P, Opts);
  EXPECT_EQ(R2.LoadsEliminated, 1u);
  checkEquivalent(P, R2.Transformed);
}

TEST(LoadElimTest, MultipleIndependentPipelines) {
  Program P = parseOrDie(R"(
    do i = 1, 200 {
      A[i+1] = A[i] + 1;
      B[i+2] = B[i] * 2;
    })");
  LoadElimResult R = eliminateRedundantLoads(P);
  EXPECT_EQ(R.LoadsEliminated, 2u);
  auto [IA, IB] = checkEquivalent(P, R.Transformed);
  EXPECT_EQ(IB.stats().ArrayLoads, 3u); // 1 + 2 preheader fills
  (void)IA;
}
