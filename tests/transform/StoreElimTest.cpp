//===- tests/transform/StoreElimTest.cpp - Redundant store elimination ---===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "transform/StoreElimination.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

/// Runs both programs on identical inputs and compares the full array
/// state; returns the two interpreters for stat comparisons.
std::pair<Interpreter, Interpreter>
checkEquivalent(const Program &Original, const Program &Transformed,
                const std::map<std::string, int64_t> &Scalars = {},
                uint64_t Seed = 7) {
  Interpreter A(Original), B(Transformed);
  for (const auto &[Name, Value] : Scalars) {
    A.setScalar(Name, Value);
    B.setScalar(Name, Value);
  }
  A.seedArray("A", 64, Seed);
  B.seedArray("A", 64, Seed);
  A.run();
  B.run();
  EXPECT_EQ(A.state().Arrays, B.state().Arrays)
      << "original:\n"
      << programToString(Original) << "transformed:\n"
      << programToString(Transformed);
  return {std::move(A), std::move(B)};
}

} // namespace

TEST(StoreElimTest, Fig6ConditionalRedundantStore) {
  // Fig. 6: the conditional store A[i+1] is overwritten one iteration
  // later by the unconditional A[i] without an intervening use.
  Program P = parseOrDie(R"(
    do i = 1, 1000 {
      A[i] = i;
      if (x == 0) { A[i+1] = 99; }
    })");
  StoreElimResult R = eliminateRedundantStores(P);
  EXPECT_EQ(R.StoresEliminated, 1u);
  EXPECT_EQ(R.UnpeeledIterations, 1);
  ASSERT_EQ(R.Notes.size(), 1u);
  EXPECT_EQ(R.Notes[0], "A[i + 1] is 1-redundant (overwritten by A[i])");

  // Equivalent under both truth values of the condition.
  auto [A0, B0] = checkEquivalent(P, R.Transformed, {{"x", 0}});
  checkEquivalent(P, R.Transformed, {{"x", 1}});
  // And cheaper: one store per iteration saved in 999 iterations.
  EXPECT_LT(B0.stats().ArrayStores, A0.stats().ArrayStores);
  EXPECT_EQ(A0.stats().ArrayStores - B0.stats().ArrayStores, 999u);
}

TEST(StoreElimTest, UnconditionalRedundantStore) {
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i+1] = 5;
      A[i] = i;
    })");
  // A[i+1] is rewritten by A[i] one iteration later; no use intervenes.
  StoreElimResult R = eliminateRedundantStores(P);
  EXPECT_EQ(R.StoresEliminated, 1u);
  checkEquivalent(P, R.Transformed);
}

TEST(StoreElimTest, InterveningUseBlocksElimination) {
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = i;
      B[i] = A[i-1];
      A[i+1] = 7;
    })");
  // The use A[i-1] reads what A[i+1] stored two iterations earlier...
  // more precisely A[i+1]@j is read at j+2 before A[i]@j+1? No: A[i]@j+1
  // overwrites cell j+1 before B[j+2] reads cell j+1. Careful analysis
  // aside, the framework must prove safety; check behavioral equality.
  StoreElimResult R = eliminateRedundantStores(P);
  checkEquivalent(P, R.Transformed);
}

TEST(StoreElimTest, UseOfStoredValueBlocks) {
  // The stored A[i] value is read one iteration later: not redundant.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = i * 3;
      y = y + A[i-1];
      A[i+1] = 0;
    })");
  StoreElimResult R = eliminateRedundantStores(P);
  // A[i+1] is overwritten by A[i] in the next iteration BUT its cell
  // (i+1) is read by A[i-1] two iterations later -- after the overwrite,
  // so A[i+1] is still dead; A[i] itself is read, so it stays.
  checkEquivalent(P, R.Transformed);
  Interpreter IA(P), IB(R.Transformed);
  IA.run();
  IB.run();
  EXPECT_EQ(IA.scalar("y"), IB.scalar("y"));
}

TEST(StoreElimTest, SameIterationOverwrite) {
  Program P = parseOrDie(R"(
    do i = 1, 50 {
      A[i] = 1;
      A[i] = 2;
    })");
  StoreElimResult R = eliminateRedundantStores(P);
  EXPECT_EQ(R.StoresEliminated, 1u);
  EXPECT_EQ(R.UnpeeledIterations, 0);
  checkEquivalent(P, R.Transformed);
  Interpreter I(R.Transformed);
  I.run();
  EXPECT_EQ(I.stats().ArrayStores, 50u);
}

TEST(StoreElimTest, ConditionalOverwriterDoesNotKill) {
  // The future store is conditional: no all-paths guarantee, nothing
  // may be removed.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i+1] = 5;
      if (x == 0) { A[i] = i; }
    })");
  StoreElimResult R = eliminateRedundantStores(P);
  EXPECT_EQ(R.StoresEliminated, 0u);
}

TEST(StoreElimTest, SymbolicBoundUnpeelsSymbolically) {
  Program P = parseOrDie(R"(
    do i = 1, N {
      A[i] = i;
      A[i+1] = 0;
    })");
  StoreElimResult R = eliminateRedundantStores(P);
  ASSERT_EQ(R.StoresEliminated, 1u);
  // Run with a concrete N on both.
  checkEquivalent(P, R.Transformed, {{"N", 37}});
  std::string Text = programToString(R.Transformed);
  EXPECT_NE(Text.find("N - 1"), std::string::npos) << Text;
}

TEST(StoreElimTest, TinyTripCountLeftAlone) {
  Program P = parseOrDie(R"(
    do i = 1, 1 {
      A[i] = i;
      A[i+1] = 0;
    })");
  StoreElimResult R = eliminateRedundantStores(P);
  checkEquivalent(P, R.Transformed);
}
