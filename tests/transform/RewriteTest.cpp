//===- tests/transform/RewriteTest.cpp - Clone-with-edits rewriter -------===//

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/PrettyPrinter.h"
#include "transform/Rewrite.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

/// Finds the first ArrayRefExpr named \p Name in the program.
const ArrayRefExpr *findRef(const Program &P, const std::string &Text) {
  const ArrayRefExpr *Found = nullptr;
  forEachStmt(P.getStmts(), [&](const Stmt &S) {
    if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
      forEachSubExpr(*AS->getRHS(), [&](const Expr &E) {
        if (const auto *AR = dyn_cast<ArrayRefExpr>(&E))
          if (!Found && exprToString(*AR) == Text)
            Found = AR;
      });
      if (!Found && AS->getArrayTarget() &&
          exprToString(*AS->getArrayTarget()) == Text)
        Found = AS->getArrayTarget();
    }
  });
  return Found;
}

const Stmt *nthStmt(const Program &P, size_t N) {
  const auto *Loop = P.getFirstLoop();
  return Loop ? Loop->getBody()[N].get() : P.getStmts()[N].get();
}

} // namespace

TEST(RewriteTest, ReplaceExpr) {
  Program P = parseOrDie("do i = 1, 10 { B[i] = A[i] + 1; }");
  RewritePlan Plan;
  Plan.ReplaceExprs[findRef(P, "A[i]")] = var("t");
  Program Q = rewriteProgram(P, Plan);
  EXPECT_NE(programToString(Q).find("B[i] = t + 1;"), std::string::npos);
  // The original is untouched.
  EXPECT_NE(programToString(P).find("B[i] = A[i] + 1;"),
            std::string::npos);
}

TEST(RewriteTest, RemoveStatementAtDepth) {
  Program P = parseOrDie(
      "do i = 1, 10 { if (x > 0) { A[i] = 1; B[i] = 2; } C[i] = 3; }");
  const auto *Loop = P.getFirstLoop();
  const auto *If = cast<IfStmt>(Loop->getBody()[0].get());
  RewritePlan Plan;
  Plan.RemoveStmts.insert(If->getThen()[0].get());
  Program Q = rewriteProgram(P, Plan);
  std::string Text = programToString(Q);
  EXPECT_EQ(Text.find("A[i] = 1;"), std::string::npos);
  EXPECT_NE(Text.find("B[i] = 2;"), std::string::npos);
}

TEST(RewriteTest, InsertBeforeAndAfter) {
  Program P = parseOrDie("do i = 1, 10 { A[i] = 1; }");
  const Stmt *Target = nthStmt(P, 0);
  RewritePlan Plan;
  Plan.InsertBefore[Target].push_back(assign(var("pre"), lit(1)));
  Plan.InsertAfter[Target].push_back(assign(var("post"), lit(2)));
  Program Q = rewriteProgram(P, Plan);
  std::string Text = programToString(Q);
  size_t Pre = Text.find("pre = 1;");
  size_t Mid = Text.find("A[i] = 1;");
  size_t Post = Text.find("post = 2;");
  ASSERT_NE(Pre, std::string::npos);
  ASSERT_NE(Mid, std::string::npos);
  ASSERT_NE(Post, std::string::npos);
  EXPECT_LT(Pre, Mid);
  EXPECT_LT(Mid, Post);
}

TEST(RewriteTest, InsertsSurviveRemoval) {
  Program P = parseOrDie("A[1] = 1;");
  const Stmt *Target = P.getStmts()[0].get();
  RewritePlan Plan;
  Plan.RemoveStmts.insert(Target);
  Plan.InsertBefore[Target].push_back(assign(var("a"), lit(1)));
  Plan.InsertAfter[Target].push_back(assign(var("b"), lit(2)));
  Program Q = rewriteProgram(P, Plan);
  std::string Text = programToString(Q);
  EXPECT_EQ(Text.find("A[1]"), std::string::npos);
  EXPECT_NE(Text.find("a = 1;"), std::string::npos);
  EXPECT_NE(Text.find("b = 2;"), std::string::npos);
}

TEST(RewriteTest, EmptyPlanIsDeepCopy) {
  Program P = parseOrDie(
      "array X[4, 4];\ndo i = 1, 10 { if (A[i] > 0) { X[i, 1] = 2; } }");
  RewritePlan Plan;
  EXPECT_TRUE(Plan.empty());
  Program Q = rewriteProgram(P, Plan);
  EXPECT_EQ(programToString(Q), programToString(P));
}

TEST(RewriteTest, SubstituteScalarShadowedByInnerLoop) {
  Program P = parseOrDie(
      "do i = 1, 4 { A[i] = 0; do i = 1, 3 { B[i] = 1; } }");
  const auto *Outer = P.getFirstLoop();
  StmtList Subbed = substituteScalar(Outer->getBody(), "i", *lit(7));
  // Outer use substituted, inner loop left alone (its own i shadows).
  Program Q;
  for (StmtPtr &S : Subbed)
    Q.addStmt(std::move(S));
  std::string Text = programToString(Q);
  EXPECT_NE(Text.find("A[7] = 0;"), std::string::npos);
  EXPECT_NE(Text.find("B[i] = 1;"), std::string::npos);
}

TEST(RewriteTest, SubstituteIntoExpression) {
  ExprPtr E = add(mul(lit(2), var("i")), var("j"));
  ExprPtr S = substituteScalar(*E, "i", *add(var("i"), lit(1)));
  EXPECT_EQ(exprToString(*S), "2 * (i + 1) + j");
}
