//===- tests/transform/TransformPropertyTest.cpp - Randomized equivalence ===//
//
// Property-based testing of the optimization pipeline: pseudo-random
// loops are generated, transformed by store elimination, load
// elimination, unrolling, and their compositions, and each variant must
// be observationally equivalent to the original under interpretation on
// seeded memory. This is the strongest soundness net for the framework:
// any unsound preserve constant, pr predicate, or reuse distance shows
// up as a state divergence here.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "transform/LoadElimination.h"
#include "transform/LoopUnroll.h"
#include "transform/StoreElimination.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ardf;

namespace {

/// Deterministic xorshift generator (no global state).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 2654435769u + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }
};

/// Emits one random affine reference like "A[2*i - 1]".
std::string randomRef(Rng &R) {
  static const char *Arrays[] = {"A", "B", "C"};
  const char *Name = Arrays[R.range(0, 2)];
  int64_t Coef = R.range(1, 2);
  int64_t Off = R.range(-3, 3);
  std::ostringstream OS;
  OS << Name << '[';
  if (Coef != 1)
    OS << Coef << " * ";
  OS << 'i';
  if (Off > 0)
    OS << " + " << Off;
  else if (Off < 0)
    OS << " - " << -Off;
  OS << ']';
  return OS.str();
}

std::string randomExpr(Rng &R) {
  std::ostringstream OS;
  OS << randomRef(R);
  if (R.chance(50))
    OS << " + " << randomRef(R);
  if (R.chance(30))
    OS << " * " << R.range(1, 3);
  if (R.chance(30))
    OS << " + x";
  return OS.str();
}

std::string randomStmt(Rng &R, unsigned Depth) {
  std::ostringstream OS;
  if (Depth == 0 && R.chance(30)) {
    OS << "if (" << randomRef(R) << " > " << R.range(-100, 100) << ") { "
       << randomStmt(R, 1);
    if (R.chance(40))
      OS << randomStmt(R, 1);
    OS << " }";
    if (R.chance(30))
      OS << " else { " << randomStmt(R, 1) << " }";
    return OS.str();
  }
  OS << randomRef(R) << " = " << randomExpr(R) << "; ";
  return OS.str();
}

std::string randomLoop(uint64_t Seed) {
  Rng R(Seed);
  std::ostringstream OS;
  OS << "do i = 1, " << R.range(5, 60) << " { ";
  unsigned NumStmts = R.range(2, 6);
  for (unsigned I = 0; I != NumStmts; ++I)
    OS << randomStmt(R, 0) << ' ';
  OS << "}";
  return OS.str();
}

MachineState runOn(const Program &P, uint64_t Seed) {
  Interpreter I(P);
  I.setScalar("x", static_cast<int64_t>(Seed % 17) - 8);
  for (const char *Arr : {"A", "B", "C"})
    I.seedArray(Arr, 160, Seed ^ 0xabcdef);
  I.run();
  MachineState S = I.state();
  // Temporaries and induction values are implementation details; only
  // arrays are compared.
  S.Scalars.clear();
  return S;
}

class TransformProperty : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(TransformProperty, StoreEliminationPreservesState) {
  uint64_t Seed = GetParam();
  Program P = parseOrDie(randomLoop(Seed));
  StoreElimResult R = eliminateRedundantStores(P);
  EXPECT_EQ(runOn(P, Seed).Arrays, runOn(R.Transformed, Seed).Arrays)
      << programToString(P) << "--- transformed:\n"
      << programToString(R.Transformed);
}

TEST_P(TransformProperty, LoadEliminationPreservesState) {
  uint64_t Seed = GetParam();
  Program P = parseOrDie(randomLoop(Seed));
  LoadElimResult R = eliminateRedundantLoads(P);
  EXPECT_EQ(runOn(P, Seed).Arrays, runOn(R.Transformed, Seed).Arrays)
      << programToString(P) << "--- transformed:\n"
      << programToString(R.Transformed);
}

TEST_P(TransformProperty, UnrollingPreservesState) {
  uint64_t Seed = GetParam();
  Program P = parseOrDie(randomLoop(Seed));
  for (unsigned F : {2u, 3u}) {
    Program Q = unrollProgram(P, F);
    EXPECT_EQ(runOn(P, Seed).Arrays, runOn(Q, Seed).Arrays)
        << programToString(P) << "--- unrolled x" << F << ":\n"
        << programToString(Q);
  }
}

TEST_P(TransformProperty, ComposedPipelinePreservesState) {
  uint64_t Seed = GetParam();
  Program P = parseOrDie(randomLoop(Seed));
  StoreElimResult S = eliminateRedundantStores(P);
  LoadElimResult L = eliminateRedundantLoads(S.Transformed);
  EXPECT_EQ(runOn(P, Seed).Arrays, runOn(L.Transformed, Seed).Arrays)
      << programToString(P) << "--- pipeline output:\n"
      << programToString(L.Transformed);
}

TEST_P(TransformProperty, LoadEliminationNeverAddsLoads) {
  uint64_t Seed = GetParam();
  Program P = parseOrDie(randomLoop(Seed));
  LoadElimResult R = eliminateRedundantLoads(P);
  Interpreter A(P), B(R.Transformed);
  for (const char *Arr : {"A", "B", "C"}) {
    A.seedArray(Arr, 160, Seed);
    B.seedArray(Arr, 160, Seed);
  }
  A.run();
  B.run();
  // In-loop loads never increase; the only additions are the one-time
  // preheader fills (bounded by the number of temporaries introduced).
  // Sinks under never-taken conditionals can make the one-time cost
  // visible, hence the slack term.
  EXPECT_LE(B.stats().ArrayLoads,
            A.stats().ArrayLoads + R.TempsIntroduced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Range<uint64_t>(1, 81));
