//===- tests/ir/RoundTripTest.cpp - Parse/print/re-parse round trips -----===//
//
// Every bundled example program must survive a full round trip: parse,
// pretty-print, re-parse, and compare structurally. This pins down both
// directions at once -- the printer emits valid surface syntax and the
// parser maps it back to the identical tree (source locations excepted;
// Program::equals ignores them by design).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ardf;

namespace {

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<std::filesystem::path> examplePrograms() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ARDF_EXAMPLES_DIR))
    if (Entry.path().extension() == ".arf")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

} // namespace

TEST(RoundTripTest, AllExampleProgramsRoundTrip) {
  std::vector<std::filesystem::path> Files = examplePrograms();
  ASSERT_GE(Files.size(), 4u); // fig1, fig4, fig5, stencil at minimum
  for (const std::filesystem::path &Path : Files) {
    SCOPED_TRACE(Path.filename().string());
    ParseResult First = parseProgram(readFile(Path));
    ASSERT_TRUE(First.succeeded()) << First.diagnosticsToString();

    std::string Printed = programToString(First.Prog);
    ParseResult Second = parseProgram(Printed);
    ASSERT_TRUE(Second.succeeded())
        << "pretty-printed form does not re-parse:\n"
        << Printed << "\n"
        << Second.diagnosticsToString();

    EXPECT_TRUE(First.Prog.equals(Second.Prog)) << Printed;
    // Printing is a fixed point: a second cycle changes nothing.
    EXPECT_EQ(Printed, programToString(Second.Prog));
  }
}

TEST(RoundTripTest, ParsedProgramsCarrySourceLocations) {
  for (const std::filesystem::path &Path : examplePrograms()) {
    SCOPED_TRACE(Path.filename().string());
    ParseResult R = parseProgram(readFile(Path));
    ASSERT_TRUE(R.succeeded());
    unsigned Stmts = 0, Located = 0;
    forEachStmt(R.Prog.getStmts(), [&](const Stmt &S) {
      ++Stmts;
      Located += S.getLoc().isValid();
    });
    EXPECT_GT(Stmts, 0u);
    EXPECT_EQ(Located, Stmts); // every parsed statement has a position
  }
}

TEST(RoundTripTest, CloneKeepsLocationsAndEquality) {
  ParseResult R = parseProgram("do i = 1, 10 {\n  A[i+1] = A[i];\n}\n");
  ASSERT_TRUE(R.succeeded());
  Program Copy = R.Prog.clone();
  EXPECT_TRUE(R.Prog.equals(Copy));
  EXPECT_EQ(Copy.getStmts()[0]->getLoc(), SourceLoc(1, 1));
}
