//===- tests/ir/StmtTest.cpp - Statement node behavior -------------------===//

#include "ir/IRBuilder.h"
#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

StmtPtr makeFig1Loop() {
  StmtList Body;
  Body.push_back(assign(array("C", add(var("i"), lit(2))),
                        mul(array("C", var("i")), lit(2))));
  StmtList Then;
  Then.push_back(assign(array("C", var("i")), array("B", sub(var("i"), lit(1)))));
  Body.push_back(ifThen(eq(array("C", var("i")), lit(0)), std::move(Then)));
  return doLoop("i", 1, 1000, std::move(Body));
}

} // namespace

TEST(StmtTest, AssignTarget) {
  StmtPtr S = assign(array("A", var("i")), lit(0));
  const auto *AS = cast<AssignStmt>(S.get());
  ASSERT_NE(AS->getArrayTarget(), nullptr);
  EXPECT_EQ(AS->getArrayTarget()->getName(), "A");

  StmtPtr Scalar = assign(var("x"), lit(0));
  EXPECT_EQ(cast<AssignStmt>(Scalar.get())->getArrayTarget(), nullptr);
}

TEST(StmtTest, DoLoopProperties) {
  StmtPtr S = makeFig1Loop();
  const auto *DL = cast<DoLoopStmt>(S.get());
  EXPECT_EQ(DL->getIndVar(), "i");
  EXPECT_TRUE(DL->isNormalized());
  EXPECT_EQ(DL->getConstantTripCount(), 1000);
}

TEST(StmtTest, SymbolicTripCountIsUnknown) {
  StmtList Body;
  Body.push_back(assign(var("x"), lit(0)));
  StmtPtr S = doLoop("i", 1, "N", std::move(Body));
  EXPECT_EQ(cast<DoLoopStmt>(S.get())->getConstantTripCount(), -1);
}

TEST(StmtTest, NonUnitStepIsNotNormalized) {
  StmtList Body;
  Body.push_back(assign(var("x"), lit(0)));
  auto DL = std::make_unique<DoLoopStmt>("i", lit(1), lit(10),
                                         std::move(Body), 2);
  EXPECT_FALSE(DL->isNormalized());
  EXPECT_EQ(DL->getConstantTripCount(), 5);
}

TEST(StmtTest, CloneIsDeep) {
  StmtPtr S = makeFig1Loop();
  StmtPtr C = S->clone();
  EXPECT_NE(S.get(), C.get());
  const auto *A = cast<DoLoopStmt>(S.get());
  const auto *B = cast<DoLoopStmt>(C.get());
  EXPECT_EQ(A->getBody().size(), B->getBody().size());
  EXPECT_NE(A->getBody()[0].get(), B->getBody()[0].get());
  // Both bodies contain an if with one then-statement.
  const auto *IfA = cast<IfStmt>(A->getBody()[1].get());
  const auto *IfB = cast<IfStmt>(B->getBody()[1].get());
  EXPECT_TRUE(IfA->getCond()->equals(*IfB->getCond()));
  EXPECT_EQ(IfB->getThen().size(), 1u);
  EXPECT_FALSE(IfB->hasElse());
}

TEST(StmtTest, ForEachStmtVisitsNested) {
  StmtPtr S = makeFig1Loop();
  unsigned Assigns = 0, Ifs = 0, Loops = 0;
  forEachStmt(*S, [&](const Stmt &Sub) {
    switch (Sub.getKind()) {
    case Stmt::Kind::Assign:
      ++Assigns;
      break;
    case Stmt::Kind::If:
      ++Ifs;
      break;
    case Stmt::Kind::DoLoop:
      ++Loops;
      break;
    case Stmt::Kind::While:
    case Stmt::Kind::Break:
      break;
    }
  });
  EXPECT_EQ(Assigns, 2u);
  EXPECT_EQ(Ifs, 1u);
  EXPECT_EQ(Loops, 1u);
}

TEST(StmtTest, WhileCloneAndEquals) {
  StmtList Body;
  Body.push_back(assign(array("A", var("i")), lit(0)));
  Body.push_back(assign(var("i"), add(var("i"), lit(1))));
  StmtPtr W = whileLoop(binop(BinaryOpKind::Le, var("i"), lit(10)),
                        std::move(Body));

  StmtPtr C = W->clone();
  EXPECT_NE(W.get(), C.get());
  EXPECT_TRUE(W->equals(*C));
  const auto *WC = cast<WhileStmt>(C.get());
  EXPECT_EQ(WC->getBody().size(), 2u);
  EXPECT_NE(WC->getBody()[0].get(),
            cast<WhileStmt>(W.get())->getBody()[0].get());

  // Different condition: not equal.
  StmtList Body2;
  Body2.push_back(assign(array("A", var("i")), lit(0)));
  Body2.push_back(assign(var("i"), add(var("i"), lit(1))));
  StmtPtr W2 = whileLoop(binop(BinaryOpKind::Lt, var("i"), lit(10)),
                         std::move(Body2));
  EXPECT_FALSE(W->equals(*W2));

  // Different body: not equal.
  StmtList Body3;
  Body3.push_back(assign(var("i"), add(var("i"), lit(1))));
  StmtPtr W3 = whileLoop(binop(BinaryOpKind::Le, var("i"), lit(10)),
                         std::move(Body3));
  EXPECT_FALSE(W->equals(*W3));
}

TEST(StmtTest, BreakCloneAndEquals) {
  StmtPtr B = breakStmt();
  StmtPtr C = B->clone();
  EXPECT_NE(B.get(), C.get());
  EXPECT_TRUE(B->equals(*C));
  // A break never equals a non-break statement.
  StmtPtr A = assign(var("x"), lit(1));
  EXPECT_FALSE(B->equals(*A));
  EXPECT_FALSE(A->equals(*B));
}

TEST(StmtTest, WhileNeverEqualsDoLoop) {
  // rerun() diffing leans on kind-mismatch inequality; a while whose
  // body matches a DO loop's body must still compare unequal.
  StmtList WBody;
  WBody.push_back(assign(array("A", var("i")), lit(0)));
  StmtPtr W = whileLoop(binop(BinaryOpKind::Le, var("i"), lit(10)),
                        std::move(WBody));
  StmtList DBody;
  DBody.push_back(assign(array("A", var("i")), lit(0)));
  StmtPtr D = doLoop("i", 1, 10, std::move(DBody));
  EXPECT_FALSE(W->equals(*D));
  EXPECT_FALSE(D->equals(*W));
}

TEST(StmtTest, ProgramAccessors) {
  Program P;
  std::vector<ExprPtr> Dims;
  Dims.push_back(lit(100));
  P.declareArray("A", std::move(Dims));
  P.addStmt(makeFig1Loop());

  ASSERT_NE(P.getArrayDecl("A"), nullptr);
  EXPECT_EQ(P.getArrayDecl("B"), nullptr);
  ASSERT_NE(P.getFirstLoop(), nullptr);
  EXPECT_EQ(P.getFirstLoop()->getIndVar(), "i");

  Program Q = P.clone();
  EXPECT_NE(Q.getFirstLoop(), P.getFirstLoop());
  EXPECT_EQ(Q.arrayDecls().size(), 1u);
}
