//===- tests/ir/ExprTest.cpp - Expression node behavior ------------------===//

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(ExprTest, KindsAndCasting) {
  ExprPtr E = add(var("i"), lit(2));
  ASSERT_TRUE(isa<BinaryExpr>(E.get()));
  const auto *BE = cast<BinaryExpr>(E.get());
  EXPECT_EQ(BE->getOp(), BinaryOpKind::Add);
  EXPECT_TRUE(isa<VarRef>(BE->getLHS()));
  EXPECT_TRUE(isa<IntLit>(BE->getRHS()));
  EXPECT_EQ(dyn_cast<ArrayRefExpr>(E.get()), nullptr);
}

TEST(ExprTest, ArrayRefSubscripts) {
  ExprPtr E = array("A", add(var("i"), lit(1)), var("j"));
  const auto *AR = cast<ArrayRefExpr>(E.get());
  EXPECT_EQ(AR->getName(), "A");
  ASSERT_EQ(AR->getNumSubscripts(), 2u);
  EXPECT_TRUE(isa<BinaryExpr>(AR->getSubscript(0)));
  EXPECT_TRUE(isa<VarRef>(AR->getSubscript(1)));
}

TEST(ExprTest, CloneIsDeepAndEqual) {
  ExprPtr E = mul(array("A", sub(var("i"), lit(3))), neg(var("x")));
  ExprPtr C = E->clone();
  EXPECT_NE(E.get(), C.get());
  EXPECT_TRUE(E->equals(*C));
  EXPECT_TRUE(C->equals(*E));
}

TEST(ExprTest, EqualsDistinguishes) {
  EXPECT_FALSE(lit(1)->equals(*lit(2)));
  EXPECT_FALSE(var("i")->equals(*var("j")));
  EXPECT_FALSE(array("A", var("i"))->equals(*array("B", var("i"))));
  EXPECT_FALSE(array("A", var("i"))->equals(*array("A", var("j"))));
  EXPECT_FALSE(add(var("i"), lit(1))->equals(*sub(var("i"), lit(1))));
  EXPECT_FALSE(var("i")->equals(*lit(1)));
}

TEST(ExprTest, ForEachSubExprVisitsPreOrder) {
  ExprPtr E = add(array("A", var("i")), lit(5));
  std::vector<Expr::Kind> Kinds;
  forEachSubExpr(*E, [&](const Expr &Sub) { Kinds.push_back(Sub.getKind()); });
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], Expr::Kind::Binary);
  EXPECT_EQ(Kinds[1], Expr::Kind::ArrayRef);
  EXPECT_EQ(Kinds[2], Expr::Kind::VarRef);
  EXPECT_EQ(Kinds[3], Expr::Kind::IntLit);
}

TEST(ExprTest, Spellings) {
  EXPECT_STREQ(spelling(BinaryOpKind::Add), "+");
  EXPECT_STREQ(spelling(BinaryOpKind::Le), "<=");
  EXPECT_STREQ(spelling(BinaryOpKind::And), "&&");
  EXPECT_STREQ(spelling(UnaryOpKind::Neg), "-");
}
