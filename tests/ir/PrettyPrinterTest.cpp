//===- tests/ir/PrettyPrinterTest.cpp - Printing and round-trips ---------===//

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(PrettyPrinterTest, Expressions) {
  EXPECT_EQ(exprToString(*add(var("i"), lit(2))), "i + 2");
  EXPECT_EQ(exprToString(*mul(add(var("i"), lit(1)), lit(2))),
            "(i + 1) * 2");
  EXPECT_EQ(exprToString(*add(mul(var("a"), var("i")), var("b"))),
            "a * i + b");
  EXPECT_EQ(exprToString(*array("A", sub(var("i"), lit(1)))), "A[i - 1]");
  EXPECT_EQ(exprToString(*array("X", var("i"), var("j"))), "X[i, j]");
  EXPECT_EQ(exprToString(*neg(var("x"))), "-x");
  EXPECT_EQ(exprToString(*eq(array("C", var("i")), lit(0))), "C[i] == 0");
}

TEST(PrettyPrinterTest, SubtractionAssociativity) {
  // (a - b) - c must not print as a - b - c ambiguously reparsed.
  ExprPtr E = sub(sub(var("a"), var("b")), var("c"));
  std::string Text = exprToString(*E);
  ParseResult R = parseProgram("x = " + Text + ";");
  ASSERT_TRUE(R.succeeded());
  const auto *AS = cast<AssignStmt>(R.Prog.getStmts()[0].get());
  EXPECT_TRUE(AS->getRHS()->equals(*E));
}

TEST(PrettyPrinterTest, Statements) {
  StmtList Then;
  Then.push_back(assign(var("x"), lit(1)));
  StmtPtr S = ifThen(eq(var("x"), lit(0)), std::move(Then));
  EXPECT_EQ(stmtToString(*S), "if (x == 0) {\n  x = 1;\n}\n");
}

TEST(PrettyPrinterTest, ProgramRoundTrip) {
  const char *Source = R"(array C[1000];
array X[N, N];
do i = 1, 1000 {
  C[i + 2] = C[i] * 2;
  B[2 * i] = C[i] + X;
  if (C[i] == 0) {
    C[i] = B[i - 1];
  }
  B[i] = C[i + 1];
}
)";
  Program P = parseOrDie(Source);
  std::string Printed = programToString(P);
  // Parsing the printed form must yield the identical printed form.
  Program P2 = parseOrDie(Printed);
  EXPECT_EQ(programToString(P2), Printed);
}

TEST(PrettyPrinterTest, NonUnitStepPrinted) {
  StmtList Body;
  Body.push_back(assign(var("x"), var("i")));
  auto DL =
      std::make_unique<DoLoopStmt>("i", lit(1), lit(9), std::move(Body), 2);
  EXPECT_EQ(stmtToString(*DL), "do i = 1, 9, 2 {\n  x = i;\n}\n");
}
