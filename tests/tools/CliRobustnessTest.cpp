//===- tests/tools/CliRobustnessTest.cpp - CLI exit-code contract --------===//
//
// Black-box checks of the shipped binaries: missing, non-regular, and
// oversized inputs exit 2 with a one-line diagnostic; clean inputs exit
// 0; --strict turns degraded checks into exit 1; ARDF_FAILPOINTS arms
// failpoints in a child process without code changes.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace {

const std::string Lint = ARDF_LINT_BIN;
const std::string Stats = ARDF_STATS_BIN;
const std::string Explain = ARDF_EXPLAIN_BIN;
const std::string Serve = ARDF_SERVE_BIN;
const std::string Example = std::string(ARDF_EXAMPLES_DIR) + "/fig1.arf";
const std::string Fig4 = std::string(ARDF_EXAMPLES_DIR) + "/fig4.arf";

/// Runs a shell command with stdout/stderr discarded; returns the exit
/// code (or -1 if the child died abnormally).
int run(const std::string &Cmd) {
  int Status = std::system((Cmd + " >/dev/null 2>&1").c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Runs a command and captures combined stdout+stderr.
int runCapture(const std::string &Cmd, std::string &Out) {
  Out.clear();
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

TEST(CliRobustnessTest, CleanInputExitsZero) {
  EXPECT_EQ(run(Lint + " --quiet " + Example), 0);
  EXPECT_EQ(run(Stats + " " + Example), 0);
}

TEST(CliRobustnessTest, MissingInputExitsTwo) {
  EXPECT_EQ(run(Lint + " /nonexistent/input.arf"), 2);
  EXPECT_EQ(run(Stats + " /nonexistent/input.arf"), 2);
  std::string Out;
  EXPECT_EQ(runCapture(Lint + " /nonexistent/input.arf", Out), 2);
  EXPECT_NE(Out.find("no such file"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, DirectoryInputExitsTwo) {
  // A directory opens fine as an ifstream and reads as empty -- the
  // classic silent-success trap. Both tools must refuse it.
  EXPECT_EQ(run(Lint + " " + ARDF_EXAMPLES_DIR), 2);
  EXPECT_EQ(run(Stats + " " + ARDF_EXAMPLES_DIR), 2);
  std::string Out;
  EXPECT_EQ(runCapture(Stats + " " + ARDF_EXAMPLES_DIR, Out), 2);
  EXPECT_NE(Out.find("not a regular file"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, OversizedInputExitsTwo) {
  std::string Out;
  EXPECT_EQ(runCapture(Lint + " --max-input-bytes=4 " + Example, Out), 2);
  EXPECT_NE(Out.find("size cap"), std::string::npos) << Out;
  EXPECT_EQ(run(Stats + " --max-input-bytes=4 " + Example), 2);
  // Raising the cap (or lifting it with 0) restores normal operation.
  EXPECT_EQ(run(Lint + " --quiet --max-input-bytes=0 " + Example), 0);
}

TEST(CliRobustnessTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run(Lint), 2);                       // no inputs
  EXPECT_EQ(run(Lint + " --no-such-option x"), 2);
  EXPECT_EQ(run(Stats + " --budget-visits=0 " + Example), 2);
}

TEST(CliRobustnessTest, EngineNamesAreValidated) {
  // Every spelled engine is accepted by both tools...
  for (const char *Name : {"reference", "packed", "simd", "summary"}) {
    EXPECT_EQ(run(Lint + " --quiet --engine=" + Name + " " + Example), 0)
        << Name;
    EXPECT_EQ(run(Stats + " --engine=" + Name + " " + Example), 0) << Name;
  }
  // ...and a typo is a usage error naming the valid spellings, not a
  // silent fallback to the default engine.
  std::string Out;
  EXPECT_EQ(runCapture(Lint + " --engine=smid " + Example, Out), 2);
  EXPECT_NE(Out.find("unknown engine 'smid'"), std::string::npos) << Out;
  EXPECT_NE(Out.find("reference, packed, simd, summary"), std::string::npos)
      << Out;
  EXPECT_EQ(runCapture(Stats + " --engine=Packed " + Example, Out), 2);
  EXPECT_NE(Out.find("unknown engine 'Packed'"), std::string::npos) << Out;
  EXPECT_EQ(run(Stats + " --engine= " + Example), 2);
}

TEST(CliRobustnessTest, ListChecksPrintsTheCatalog) {
  // --list-checks needs no input file, exits 0, and prints one line per
  // check with its id, bracketed severity, and a description.
  std::string Out;
  EXPECT_EQ(runCapture(Lint + " --list-checks", Out), 0);
  for (const char *Id :
       {"redundant-load", "dead-store", "loop-carried-reuse",
        "cross-iteration-conflict", "precondition", "parse-error",
        "analysis-degraded", "analysis-unsupported", "engine-divergence"})
    EXPECT_NE(Out.find(Id), std::string::npos) << "missing " << Id << " in:\n"
                                               << Out;
  EXPECT_NE(Out.find("[warning]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[error]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("[note]"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, StrictTurnsDegradationIntoFailure) {
  // Without --strict a degraded check is a warning (exit 0); with it,
  // exit 1. The failpoint is armed purely through the environment.
  std::string Armed = "env ARDF_FAILPOINTS=lint.check@2:throw ";
  EXPECT_EQ(run(Armed + Lint + " --quiet " + Example), 0);
  EXPECT_EQ(run(Armed + Lint + " --quiet --strict " + Example), 1);
  std::string Out;
  EXPECT_EQ(runCapture(Armed + Lint + " --quiet --strict " + Example, Out),
            1);
  EXPECT_NE(Out.find("analysis degraded"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, BudgetFlagDegradesButStillSucceeds) {
  // A starvation budget degrades every check -- graceful, exit 0.
  EXPECT_EQ(run(Lint + " --quiet --budget-visits=1 " + Example), 0);
  EXPECT_EQ(run(Lint + " --quiet --strict --budget-visits=1 " + Example), 1);
  std::string Out;
  EXPECT_EQ(runCapture(Stats + " --budget-visits=1 " + Example, Out), 0);
  EXPECT_NE(Out.find("degraded"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, InjectedDriverFaultIsContained) {
  // A loop-level throw inside ardf-stats' driver must not crash the
  // tool; the loop is reported failed and the process exits normally.
  std::string Out;
  int Code = runCapture("env ARDF_FAILPOINTS=driver.loop@1:throw " + Stats +
                            " " + Example,
                        Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("1 failed"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, MalformedFailpointSpecIsNonFatal) {
  std::string Out;
  int Code = runCapture("env ARDF_FAILPOINTS=bogus " + Lint + " --quiet " +
                            Example,
                        Out);
  EXPECT_EQ(Code, 0) << Out;
  EXPECT_NE(Out.find("ARDF_FAILPOINTS"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, ExplainCleanInputExitsZero) {
  EXPECT_EQ(run(Explain + " " + Fig4 +
                " --problem may-reach --loop 1 --cell 'X[i, j]'"),
            0);
  EXPECT_EQ(run(Explain + " " + Fig4 +
                " --problem avail --loop 1 --cell 'X[i, j]' --json"),
            0);
}

TEST(CliRobustnessTest, ExplainUsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run(Explain), 2); // no input
  EXPECT_EQ(run(Explain + " /nonexistent/input.arf --problem may-reach"), 2);
  EXPECT_EQ(run(Explain + " " + std::string(ARDF_EXAMPLES_DIR)), 2);
  EXPECT_EQ(run(Explain + " " + Fig4 + " --no-such-flag"), 2);
  EXPECT_EQ(run(Explain + " " + Fig4 + " --problem bogus"), 2);
  EXPECT_EQ(run(Explain + " " + Fig4 + " --problem may-reach --loop 99"), 2);
  EXPECT_EQ(run(Explain + " " + Fig4 +
                " --max-input-bytes=4 --problem may-reach"),
            2);
}

TEST(CliRobustnessTest, ExplainUnknownCellListsCandidates) {
  // A missing or unmatched --cell is a usage error that teaches: the
  // tool lists every tracked cell of the chosen loop with its role.
  std::string Out;
  EXPECT_EQ(runCapture(Explain + " " + Fig4 +
                           " --problem may-reach --loop 1 --cell 'NOPE[q]'",
                       Out),
            2);
  EXPECT_NE(Out.find("candidates"), std::string::npos) << Out;
  EXPECT_NE(Out.find("X[i + 1, j]"), std::string::npos) << Out;
  EXPECT_EQ(runCapture(Explain + " " + Fig4 + " --problem avail --loop 1",
                       Out),
            2);
  EXPECT_NE(Out.find("--cell is required"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, ExplainTortureNeverCrashes) {
  // Malformed inputs, garbage flags, truncated sources, armed
  // failpoints: ardf-explain may refuse (exit 2) or report degradation
  // (exit 1) but must never die on a signal.
  const char *Garbage[] = {
      " --problem", " --cell", " --loop", " --loop -1", " --node 999999",
      " --problem may-reach --loop 1 --cell ''",
      " --problem may-reach --engine smid",
      " --problem=must-reach --loop=1 --cell='X[i, j]' --node=0",
  };
  for (const char *Args : Garbage) {
    int Code = run(Explain + " " + Fig4 + Args);
    EXPECT_GE(Code, 0) << Args; // -1 would mean signal death
    EXPECT_LE(Code, 2) << Args;
  }
  // A solver fault mid-explain degrades instead of crashing.
  int Code = run("env ARDF_FAILPOINTS=solver.pass@1:throw " + Explain + " " +
                 Fig4 + " --problem may-reach --loop 1 --cell 'X[i, j]'");
  EXPECT_GE(Code, 0);
  EXPECT_LE(Code, 2);
}

TEST(CliRobustnessTest, VersionFlagOnEveryTool) {
  // One shared --version contract across the four binaries: exit 0, a
  // single line naming the tool and the build type, no input needed.
  struct {
    const std::string &Bin;
    const char *Name;
  } Tools[] = {{Lint, "ardf-lint"},
               {Stats, "ardf-stats"},
               {Explain, "ardf-explain"},
               {Serve, "ardf-serve"}};
  for (const auto &T : Tools) {
    std::string Out;
    EXPECT_EQ(runCapture(T.Bin + " --version", Out), 0) << T.Name;
    EXPECT_NE(Out.find(T.Name), std::string::npos) << Out;
    EXPECT_NE(Out.find("build="), std::string::npos) << Out;
  }
}

TEST(CliRobustnessTest, ServeUsageErrorsExitTwo) {
  EXPECT_EQ(run(Serve + " --no-such-flag"), 2);
  EXPECT_EQ(run(Serve + " --workers=0"), 2);
  EXPECT_EQ(run(Serve + " --socket=/tmp/a.sock --connect=/tmp/a.sock"), 2);
}

TEST(CliRobustnessTest, ServeStdioRenderMatchesLintJson) {
  // The daemon acceptance bar: a lint request over stdio answers with a
  // "render" member bit-identical to a fresh ardf-lint --format=json
  // run over the same bytes.
  std::string LintOut;
  ASSERT_EQ(runCapture(Lint + " --format=json " + Example, LintOut), 0);

  // python3 builds the request line (JSON-escaping the multi-line
  // source) and decodes the response's render member back to raw bytes.
  std::string Cmd =
      "python3 -c \"import json,sys; "
      "src=open('" + Example + "').read(); "
      "print(json.dumps({'method':'lint','id':1,'file':'" + Example +
      "','source':src}))\" | " + Serve;
  std::string Out;
  ASSERT_EQ(runCapture(Cmd, Out), 0) << Out;
  // The response is one JSON line; the render member carries the exact
  // bytes with JSON escapes. Decode it with the same python and diff.
  std::string Decode =
      Cmd + " | python3 -c \"import json,sys; "
            "r=json.loads(sys.stdin.readline()); "
            "assert r['ok'], r; sys.stdout.write(r['result']['render'])\"";
  std::string Render;
  ASSERT_EQ(runCapture(Decode, Render), 0) << Render;
  EXPECT_EQ(Render, LintOut) << "daemon render drifted from ardf-lint";
}

TEST(CliRobustnessTest, ServeStdioSurvivesPoisonLines) {
  // Malformed JSON, a JSON depth bomb, an unknown method, and a missing
  // source, then a good stats request: one response line each, orderly
  // exit 0, and the final response is ok.
  std::string Script =
      "printf '%s\\n' "
      "'{\"method\": nope}' "
      "'" + std::string(300, '[') + "' "
      "'{\"method\":\"frobnicate\"}' "
      "'{\"method\":\"lint\"}' "
      "'{\"method\":\"stats\",\"id\":99}' | " + Serve;
  std::string Out;
  ASSERT_EQ(runCapture(Script, Out), 0) << Out;
  // Five request lines -> five response lines.
  size_t Lines = 0;
  for (char C : Out)
    Lines += C == '\n' ? 1 : 0;
  EXPECT_EQ(Lines, 5u) << Out;
  EXPECT_NE(Out.find("\"id\":99,\"ok\":true"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bad-request"), std::string::npos) << Out;
}

TEST(CliRobustnessTest, LintExplainFlagWorksAndFiltersDegrade) {
  // --explain rides the normal lint exit-code contract: clean inputs
  // stay exit 0 with or without a check filter, and an armed failpoint
  // degrades the explain pass without crashing.
  EXPECT_EQ(run(Lint + " --quiet --explain " + Fig4), 0);
  EXPECT_EQ(run(Lint + " --quiet --explain=loop-carried-reuse " + Fig4), 0);
  EXPECT_EQ(run(Lint + " --quiet --explain --engine=simd " + Fig4), 0);
  std::string Out;
  EXPECT_EQ(runCapture(Lint + " --explain " + Fig4, Out), 0);
  EXPECT_NE(Out.find("because:"), std::string::npos) << Out;
  EXPECT_EQ(run("env ARDF_FAILPOINTS=lint.check:throw " + Lint +
                " --quiet --explain " + Fig4),
            0);
}
