//===- tests/unroll/RegisterPressureTest.cpp - Pressure prediction -------===//

#include "frontend/Parser.h"
#include "unroll/RegisterPressure.h"
#include "unroll/UnrollController.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(RegisterPressureTest, BaseBodyCountsPipelinesAndScalars) {
  // A[i+2] = A[i] + x: 3 pipeline stages + scalar x.
  Program P = parseOrDie("do i = 1, 128 { A[i+2] = A[i] + x; }");
  PressureEstimate E = estimateRegisterPressure(P, *P.getFirstLoop(), 1);
  EXPECT_FALSE(E.Unrolled);
  EXPECT_EQ(E.PipelineStages, 3u);
  EXPECT_EQ(E.Registers, 4u);
}

TEST(RegisterPressureTest, UnrollingGrowsPressure) {
  Program P = parseOrDie("do i = 1, 128 { A[i+2] = A[i] + x; "
                         "B[i+1] = B[i] * 2; }");
  PressureEstimate Base = estimateRegisterPressure(P, *P.getFirstLoop(), 1);
  PressureEstimate X2 = estimateRegisterPressure(P, *P.getFirstLoop(), 2);
  PressureEstimate X4 = estimateRegisterPressure(P, *P.getFirstLoop(), 4);
  EXPECT_TRUE(X2.Unrolled);
  EXPECT_GE(X2.Registers, Base.Registers);
  EXPECT_GE(X4.Registers, X2.Registers);
}

TEST(RegisterPressureTest, IndependentBodyPressureFlat) {
  // No cross-iteration reuse: unrolling adds no pipeline stages.
  Program P = parseOrDie("do i = 1, 128 { A[i] = B[i] + x; }");
  PressureEstimate Base = estimateRegisterPressure(P, *P.getFirstLoop(), 1);
  PressureEstimate X4 = estimateRegisterPressure(P, *P.getFirstLoop(), 4);
  EXPECT_EQ(Base.PipelineStages, 0u);
  EXPECT_EQ(X4.PipelineStages, 0u);
}

TEST(RegisterPressureTest, SymbolicTripFallsBackToBase) {
  Program P = parseOrDie("do i = 1, N { A[i+2] = A[i]; }");
  PressureEstimate E = estimateRegisterPressure(P, *P.getFirstLoop(), 4);
  EXPECT_FALSE(E.Unrolled);
}

TEST(RegisterPressureTest, ControllerHonorsRegisterBudget) {
  // Without a budget the parallel loop unrolls to the cap; with a tight
  // budget the controller stops earlier.
  Program P = parseOrDie("do i = 1, 128 { A[i+1] = A[i] + B[i]; "
                         "C[i] = B[i] * 2; }");
  UnrollControlOptions Free;
  Free.MaxFactor = 8;
  UnrollPlan Unlimited = controlUnrolling(P, *P.getFirstLoop(), Free);

  UnrollControlOptions Tight = Free;
  Tight.MaxRegisters = estimateRegisterPressure(P, *P.getFirstLoop(), 2)
                           .Registers; // enough for x2, not more
  UnrollPlan Budgeted = controlUnrolling(P, *P.getFirstLoop(), Tight);
  EXPECT_LE(Budgeted.ChosenFactor, Unlimited.ChosenFactor);
  for (const UnrollStep &S : Budgeted.Trace) {
    if (S.Performed) {
      EXPECT_LE(S.RegisterPressure, Tight.MaxRegisters);
    }
  }
}
