//===- tests/unroll/UnrollControllerTest.cpp - Controlled unrolling ------===//

#include "frontend/Parser.h"
#include "unroll/UnrollController.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(StmtDepGraphTest, BuildsForStraightLine) {
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = B[i] + 1;
      C[i] = A[i] * 2;
    })");
  auto G = buildStmtDepGraph(P, *P.getFirstLoop());
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->Stmts.size(), 2u);
  // Flow dep A[i] -> A[i] use, distance 0.
  bool Intra = false;
  for (const auto &E : G->Edges)
    if (E.From == 0 && E.To == 1 && E.Distance == 0)
      Intra = true;
  EXPECT_TRUE(Intra);
}

TEST(StmtDepGraphTest, NestedLoopRejected) {
  Program P = parseOrDie(
      "do j = 1, 10 { do i = 1, 10 { A[i] = 0; } }");
  EXPECT_FALSE(buildStmtDepGraph(P, *P.getFirstLoop()).has_value());
}

TEST(StmtDepGraphTest, ScalarRecurrenceCarried) {
  Program P = parseOrDie("do i = 1, 100 { s = s + A[i]; }");
  auto G = buildStmtDepGraph(P, *P.getFirstLoop());
  ASSERT_TRUE(G.has_value());
  EXPECT_TRUE(G->hasCarriedDistance(1));
}

TEST(CriticalPathTest, IndependentBodyStaysFlat) {
  // No carried deps: unrolling k times keeps the chain at the
  // single-body length (l_unroll == l).
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = B[i] + 1;
      C[i] = A[i] * 2;
    })");
  auto G = buildStmtDepGraph(P, *P.getFirstLoop());
  ASSERT_TRUE(G.has_value());
  unsigned L1 = criticalPathLength(*G, 1);
  EXPECT_EQ(L1, 2u);
  EXPECT_EQ(criticalPathLength(*G, 2), L1);
  EXPECT_EQ(criticalPathLength(*G, 8), L1);
}

TEST(CriticalPathTest, TightRecurrenceDoubles) {
  // Distance-1 chain from the last statement back to the first: the
  // worst case l_unroll == 2 * l for factor 2 (Section 4.3's bound).
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = A[i-1] + 1;
      B[i] = A[i];
    })");
  auto G = buildStmtDepGraph(P, *P.getFirstLoop());
  ASSERT_TRUE(G.has_value());
  unsigned L1 = criticalPathLength(*G, 1);
  unsigned L2 = criticalPathLength(*G, 2);
  EXPECT_GE(L2, L1 + 1);
  EXPECT_LE(L2, 2 * L1);
}

TEST(CriticalPathTest, PaperBoundHolds) {
  // For any body: l <= l_unroll(2) <= 2*l.
  const char *Corpus[] = {
      "do i = 1, 50 { A[i] = A[i-1]; }",
      "do i = 1, 50 { A[i] = B[i]; C[i] = A[i] + A[i-1]; }",
      "do i = 1, 50 { A[i+2] = A[i]; B[i] = A[i+1]; }",
      "do i = 1, 50 { s = s + 1; A[i] = s; }",
  };
  for (const char *Source : Corpus) {
    Program P = parseOrDie(Source);
    auto G = buildStmtDepGraph(P, *P.getFirstLoop());
    ASSERT_TRUE(G.has_value()) << Source;
    unsigned L1 = criticalPathLength(*G, 1);
    unsigned L2 = criticalPathLength(*G, 2);
    EXPECT_GE(L2, L1) << Source;
    EXPECT_LE(L2, 2 * L1) << Source;
  }
}

TEST(CriticalPathTest, DistanceOnePredictorIsLowerBound) {
  // Ignoring longer distances can only shorten chains.
  Program P = parseOrDie(
      "do i = 1, 50 { A[i+2] = A[i]; B[i] = A[i+1] + B[i-1]; }");
  auto G = buildStmtDepGraph(P, *P.getFirstLoop());
  ASSERT_TRUE(G.has_value());
  for (unsigned K : {1u, 2u, 4u, 8u})
    EXPECT_LE(criticalPathLength(*G, K, 1), criticalPathLength(*G, K));
}

TEST(UnrollControllerTest, ParallelBodyUnrollsToCap) {
  Program P = parseOrDie("do i = 1, 128 { A[i] = B[i] + 1; }");
  UnrollControlOptions Opts;
  Opts.MaxFactor = 8;
  UnrollPlan Plan = controlUnrolling(P, *P.getFirstLoop(), Opts);
  EXPECT_EQ(Plan.ChosenFactor, 8u);
  for (const UnrollStep &S : Plan.Trace)
    EXPECT_TRUE(S.Performed);
}

TEST(UnrollControllerTest, SerialChainRefusesToUnroll) {
  // Fully serial: every unrolled copy extends the chain; no usable
  // parallelism is created.
  Program P = parseOrDie("do i = 1, 128 { A[i] = A[i-1] + 1; }");
  UnrollControlOptions Opts;
  Opts.TauRatio = 1.5;
  UnrollPlan Plan = controlUnrolling(P, *P.getFirstLoop(), Opts);
  EXPECT_EQ(Plan.ChosenFactor, 1u);
  ASSERT_FALSE(Plan.Trace.empty());
  EXPECT_FALSE(Plan.Trace.front().Performed);
}

TEST(UnrollControllerTest, MixedBodyStopsAtKnee) {
  // A 2-statement body whose recurrence has distance 2: factor 2
  // creates parallelism, beyond that the chain starts growing.
  Program P = parseOrDie(R"(
    do i = 1, 128 {
      A[i+2] = A[i] + 1;
      B[i] = A[i+2] * 2;
    })");
  UnrollControlOptions Opts;
  Opts.TauRatio = 1.4;
  Opts.MaxFactor = 16;
  UnrollPlan Plan = controlUnrolling(P, *P.getFirstLoop(), Opts);
  EXPECT_GE(Plan.ChosenFactor, 2u);
  EXPECT_LT(Plan.ChosenFactor, 16u);
}

TEST(UnrollControllerTest, TraceParallelismMonotoneForParallelLoops) {
  Program P = parseOrDie("do i = 1, 128 { A[i] = B[i]; C[i] = D[i]; }");
  UnrollPlan Plan = controlUnrolling(P, *P.getFirstLoop());
  double Last = 0.0;
  for (const UnrollStep &S : Plan.Trace) {
    EXPECT_GE(S.Parallelism, Last);
    Last = S.Parallelism;
  }
}
