//===- tests/lint/LintTest.cpp - Per-check lint engine tests -------------===//

#include "lint/Checks.h"
#include "lint/LintEngine.h"
#include "lint/Render.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ardf;

namespace {

LintResult lint(const std::string &Src,
                SolverOptions::Engine Eng = SolverOptions::Engine::Reference) {
  LintOptions Opts;
  Opts.Engine = Eng;
  return lintSource(Src, "test.arf", Opts);
}

std::vector<Diagnostic> ofCheck(const LintResult &R, const std::string &Id) {
  std::vector<Diagnostic> Out;
  for (const Diagnostic &D : R.Diags)
    if (D.CheckId == Id)
      Out.push_back(D);
  return Out;
}

std::string renderedJson(const LintResult &R) {
  std::ostringstream OS;
  renderJsonLines(OS, R.Diags);
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// redundant-load
//===----------------------------------------------------------------------===//

TEST(LintRedundantLoadTest, SameIterationReRead) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  B[i] = A[i];\n"
                      "  C[i] = A[i];\n"
                      "}\n");
  std::vector<Diagnostic> Diags = ofCheck(R, checkid::RedundantLoad);
  ASSERT_EQ(Diags.size(), 1u);
  const Diagnostic &D = Diags[0];
  EXPECT_EQ(D.Severity, DiagSeverity::Warning);
  EXPECT_EQ(D.Loc, SourceLoc(3, 10)); // the second A[i]
  EXPECT_EQ(D.Distance, 0);
  EXPECT_NE(D.Message.find("same iteration"), std::string::npos);
  ASSERT_EQ(D.Related.size(), 1u);
  EXPECT_EQ(D.Related[0].Loc, SourceLoc(2, 10)); // the first A[i]
}

TEST(LintRedundantLoadTest, CrossIterationReRead) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  B[i] = A[i] + A[i+1];\n"
                      "}\n");
  std::vector<Diagnostic> Diags = ofCheck(R, checkid::RedundantLoad);
  ASSERT_EQ(Diags.size(), 1u);
  const Diagnostic &D = Diags[0];
  EXPECT_EQ(D.Loc, SourceLoc(2, 10)); // A[i] re-reads last round's A[i+1]
  EXPECT_EQ(D.Distance, 1);
  EXPECT_NE(D.FixHint.find("register pipeline of depth 1"),
            std::string::npos);
}

TEST(LintRedundantLoadTest, NoFalsePositiveOnDistinctElements) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  B[i] = A[2*i] + A[2*i+1];\n"
                      "}\n");
  EXPECT_TRUE(ofCheck(R, checkid::RedundantLoad).empty());
}

//===----------------------------------------------------------------------===//
// dead-store
//===----------------------------------------------------------------------===//

TEST(LintDeadStoreTest, SameIterationOverwrite) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  A[i+1] = B[i];\n"
                      "  A[i+1] = C[i];\n"
                      "}\n");
  std::vector<Diagnostic> Diags = ofCheck(R, checkid::DeadStore);
  ASSERT_EQ(Diags.size(), 1u);
  const Diagnostic &D = Diags[0];
  EXPECT_EQ(D.Severity, DiagSeverity::Warning);
  EXPECT_EQ(D.Loc, SourceLoc(2, 3)); // the dead (earlier) store
  EXPECT_EQ(D.Distance, 0);
  ASSERT_EQ(D.Related.size(), 1u);
  EXPECT_EQ(D.Related[0].Loc, SourceLoc(3, 3)); // the overwriting store
}

TEST(LintDeadStoreTest, CrossIterationOverwrite) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  A[i+1] = B[i];\n"
                      "  A[i] = C[i];\n"
                      "}\n");
  std::vector<Diagnostic> Diags = ofCheck(R, checkid::DeadStore);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Distance, 1);
  EXPECT_NE(Diags[0].Message.find("1 iteration later"), std::string::npos);
  EXPECT_NE(Diags[0].FixHint.find("epilogue"), std::string::npos);
}

TEST(LintDeadStoreTest, InterveningReadSuppresses) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  A[i+1] = B[i];\n"
                      "  C[i] = A[i+1];\n"
                      "  A[i+1] = C[i];\n"
                      "}\n");
  EXPECT_TRUE(ofCheck(R, checkid::DeadStore).empty());
}

//===----------------------------------------------------------------------===//
// loop-carried-reuse
//===----------------------------------------------------------------------===//

TEST(LintLoopCarriedReuseTest, UnconditionalDefFeedsLaterUse) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  A[i+1] = B[i];\n"
                      "  C[i] = A[i];\n"
                      "}\n");
  std::vector<Diagnostic> Diags = ofCheck(R, checkid::LoopCarriedReuse);
  ASSERT_EQ(Diags.size(), 1u);
  const Diagnostic &D = Diags[0];
  EXPECT_EQ(D.Severity, DiagSeverity::Note);
  EXPECT_EQ(D.Loc, SourceLoc(3, 10)); // the A[i] use
  EXPECT_EQ(D.Distance, 1);
  EXPECT_NE(D.Message.find("register pipelining candidate (distance 1, "
                           "2 register(s)"),
            std::string::npos);
  ASSERT_EQ(D.Related.size(), 1u);
  EXPECT_EQ(D.Related[0].Loc, SourceLoc(2, 3)); // the A[i+1] store
}

TEST(LintLoopCarriedReuseTest, ConditionalDefIsNotMustReuse) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  if (X > 0) { A[i+1] = B[i]; }\n"
                      "  C[i] = A[i];\n"
                      "}\n");
  // The def may not execute, so must-reaching analysis rejects the pair;
  // the may-level conflict is still reported.
  EXPECT_TRUE(ofCheck(R, checkid::LoopCarriedReuse).empty());
  EXPECT_FALSE(ofCheck(R, checkid::CrossIterationConflict).empty());
}

//===----------------------------------------------------------------------===//
// cross-iteration-conflict
//===----------------------------------------------------------------------===//

TEST(LintConflictTest, FlowDependenceAcrossIterations) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  A[i+1] = A[i] + 1;\n"
                      "}\n");
  std::vector<Diagnostic> Diags = ofCheck(R, checkid::CrossIterationConflict);
  ASSERT_EQ(Diags.size(), 1u);
  const Diagnostic &D = Diags[0];
  EXPECT_EQ(D.Severity, DiagSeverity::Note);
  EXPECT_EQ(D.Distance, 1);
  EXPECT_NE(D.Message.find("write/read"), std::string::npos);
  EXPECT_NE(D.Message.find("flow dependence"), std::string::npos);
}

TEST(LintConflictTest, IndependentIterationsAreClean) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  A[i] = B[i] * 2;\n"
                      "}\n");
  EXPECT_TRUE(ofCheck(R, checkid::CrossIterationConflict).empty());
  EXPECT_EQ(R.LoopsAnalyzed, 1u);
}

//===----------------------------------------------------------------------===//
// preconditions, poisoning, parse errors
//===----------------------------------------------------------------------===//

TEST(LintEngineTest, PreconditionErrorPoisonsLoop) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  i = i + 2;\n"
                      "  A[i+1] = A[i];\n"
                      "}\n");
  EXPECT_TRUE(R.hasErrors());
  EXPECT_EQ(R.LoopsAnalyzed, 0u); // framework checks must not run
  ASSERT_FALSE(R.Diags.empty());
  for (const Diagnostic &D : R.Diags)
    EXPECT_EQ(D.CheckId, checkid::Precondition);
  EXPECT_EQ(R.Diags[0].StmtId, 2u);
}

TEST(LintEngineTest, NonNormalizedLoopIsNormalizedAndAnalyzed) {
  // A non-normalized lower bound still gets the precondition warning,
  // but the nest reducer normalizes the loop per-analysis so the
  // framework checks run anyway and catch the distance-1 reuse.
  LintResult R = lint("do i = 2, 10 {\n"
                      "  A[i+1] = A[i];\n"
                      "}\n");
  EXPECT_FALSE(R.hasErrors());
  EXPECT_EQ(R.LoopsAnalyzed, 1u);
  std::vector<Diagnostic> Pre = ofCheck(R, checkid::Precondition);
  ASSERT_EQ(Pre.size(), 1u);
  EXPECT_NE(Pre[0].Message.find("not normalized"), std::string::npos);
  std::vector<Diagnostic> Conf = ofCheck(R, checkid::CrossIterationConflict);
  ASSERT_EQ(Conf.size(), 1u);
  EXPECT_EQ(Conf[0].Distance, 1);
}

TEST(LintEngineTest, ParseErrorsBecomeDiagnostics) {
  LintResult R = lint("do i = 1, {\n");
  EXPECT_TRUE(R.hasErrors());
  ASSERT_FALSE(R.Diags.empty());
  for (const Diagnostic &D : R.Diags) {
    EXPECT_EQ(D.CheckId, checkid::ParseError);
    EXPECT_EQ(D.Severity, DiagSeverity::Error);
    EXPECT_TRUE(D.Loc.isValid());
  }
}

TEST(LintEngineTest, NestedLoopsCanBeExcluded) {
  const char *Src = "array X[100, 100];\n"
                    "do i = 1, 10 {\n"
                    "  do j = 1, 10 {\n"
                    "    X[i, j] = X[i, j] + 1;\n"
                    "  }\n"
                    "}\n";
  LintOptions Opts;
  EXPECT_EQ(lintSource(Src, "t.arf", Opts).LoopsAnalyzed, 2u);
  Opts.IncludeNested = false;
  EXPECT_EQ(lintSource(Src, "t.arf", Opts).LoopsAnalyzed, 1u);
}

TEST(LintEngineTest, DiagnosticsAreSortedByLocation) {
  LintResult R = lint("do i = 1, 10 {\n"
                      "  A[i+1] = B[i];\n"
                      "  A[i] = A[i] + C[i];\n"
                      "}\n");
  for (size_t I = 1; I < R.Diags.size(); ++I) {
    const Diagnostic &A = R.Diags[I - 1];
    const Diagnostic &B = R.Diags[I];
    EXPECT_LE(std::tie(A.Loc.Line, A.Loc.Col), std::tie(B.Loc.Line, B.Loc.Col));
  }
}

//===----------------------------------------------------------------------===//
// engine parity and cross-check
//===----------------------------------------------------------------------===//

TEST(LintEngineTest, PackedEngineProducesIdenticalDiagnostics) {
  const char *Programs[] = {
      "do i = 1, 10 {\n  C[i+2] = C[i] * 2;\n  B[2*i] = C[i] + X;\n"
      "  if (C[i] == 0) { C[i] = B[i-1]; }\n  B[i] = C[i+1];\n}\n",
      "do i = 1, 20 {\n  B[i] = (A[i-1] + A[i] + A[i+1]) / 3;\n"
      "  A[i] = B[i];\n}\n",
      "do i = 1, 10 {\n  A[i+1] = B[i];\n  A[i] = C[i];\n}\n",
  };
  for (const char *Src : Programs) {
    LintResult Ref = lint(Src, SolverOptions::Engine::Reference);
    LintResult Packed = lint(Src, SolverOptions::Engine::PackedKernel);
    EXPECT_EQ(renderedJson(Ref), renderedJson(Packed)) << Src;
    EXPECT_EQ(Ref.EngineDivergences, 0u);
    EXPECT_EQ(Packed.EngineDivergences, 0u);
    EXPECT_TRUE(ofCheck(Ref, checkid::EngineDivergence).empty());
  }
}

//===----------------------------------------------------------------------===//
// renderers
//===----------------------------------------------------------------------===//

TEST(LintRenderTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(LintRenderTest, TextRendererShowsSnippetAndCaret) {
  std::string Src = "do i = 1, 10 {\n"
                    "  B[i] = A[i] + A[i+1];\n"
                    "}\n";
  LintResult R = lint(Src);
  SourceMap Sources;
  Sources.add("test.arf", Src);
  std::ostringstream OS;
  renderText(OS, R.Diags, Sources);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("test.arf:2:10: warning: [redundant-load]"),
            std::string::npos);
  EXPECT_NE(Out.find("B[i] = A[i] + A[i+1];"), std::string::npos);
  EXPECT_NE(Out.find("^"), std::string::npos);
  EXPECT_NE(Out.find("distance: 1 iteration"), std::string::npos);
  EXPECT_NE(Out.find("fix:"), std::string::npos);
}

TEST(LintRenderTest, JsonLinesOneObjectPerDiagnostic) {
  LintResult R = lint("do i = 1, 10 {\n  A[i+1] = A[i];\n}\n");
  std::string Out = renderedJson(R);
  size_t Lines = 0;
  std::istringstream In(Out);
  std::string Line;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_EQ(Line.front(), '{');
    EXPECT_EQ(Line.back(), '}');
    EXPECT_NE(Line.find("\"check\":"), std::string::npos);
    EXPECT_NE(Line.find("\"severity\":"), std::string::npos);
    EXPECT_NE(Line.find("\"line\":"), std::string::npos);
  }
  EXPECT_EQ(Lines, R.Diags.size());
}

TEST(LintRenderTest, SarifHasSchemaRulesAndResults) {
  LintResult R = lint("do i = 1, 10 {\n  A[i+1] = A[i];\n}\n");
  ASSERT_FALSE(R.Diags.empty());
  std::ostringstream OS;
  renderSarif(OS, R.Diags);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(Out.find("\"name\": \"ardf-lint\""), std::string::npos);
  EXPECT_NE(Out.find("\"ruleId\": \"cross-iteration-conflict\""),
            std::string::npos);
  EXPECT_NE(Out.find("\"startLine\": 2"), std::string::npos);
  EXPECT_NE(Out.find("\"iterationDistance\": 1"), std::string::npos);
}
