//===- tests/lint/LintExplainTortureTest.cpp - --explain under garbage ---===//
//
// The degrade-only contract of the explain path, replayed without a
// fuzzer driver: lintSource with Explain set must survive the checked-in
// fuzz corpus, truncated sources, and deterministic garbage bytes --
// never throwing, always leaving the renderers with diagnostics they can
// print. This is the same contract lint_explain_fuzzer.cpp enforces
// under libFuzzer, kept alive in plain ctest runs where Clang (and so
// -fsanitize=fuzzer) is unavailable.
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include "lint/Render.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace ardf;

namespace {

/// Runs the full explain pipeline plus all three renderers and checks
/// the evidence invariants; any throw fails the test via gtest's
/// uncaught-exception reporting.
void expectDegradesOnly(const std::string &Source, const std::string &Label) {
  for (SolverOptions::Engine Eng : {SolverOptions::Engine::Reference,
                                    SolverOptions::Engine::PackedKernel}) {
    LintOptions Opts;
    Opts.Engine = Eng;
    Opts.Explain = true;
    LintResult R = lintSource(Source, "torture.arf", Opts);
    for (const Diagnostic &D : R.Diags) {
      if (!D.DerivationJson.empty()) {
        EXPECT_TRUE(D.hasEvidence()) << Label;
        EXPECT_EQ(D.DerivationJson.front(), '{') << Label;
        EXPECT_EQ(D.DerivationJson.back(), '}') << Label;
      }
    }
    SourceMap Sources;
    Sources.add("torture.arf", Source);
    std::ostringstream Text, Json, Sarif;
    renderText(Text, R.Diags, Sources);
    renderJsonLines(Json, R.Diags);
    renderSarif(Sarif, R.Diags);
  }
}

} // namespace

TEST(LintExplainTortureTest, FuzzCorpusSeeds) {
  namespace fs = std::filesystem;
  fs::path Dir(ARDF_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;
  unsigned Count = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file())
      continue;
    std::ifstream In(E.path(), std::ios::binary);
    ASSERT_TRUE(In.good()) << E.path();
    std::ostringstream SS;
    SS << In.rdbuf();
    expectDegradesOnly(SS.str(), E.path().filename().string());
    ++Count;
  }
  EXPECT_GE(Count, 8u) << "fuzz corpus went missing";
}

TEST(LintExplainTortureTest, TruncatedValidSource) {
  const std::string Valid = "do i = 1, 100 { A[i+2] = A[i] + X; "
                            "if (A[i-1] > 0) { B[i] = A[i]; } }";
  for (size_t Len = 0; Len <= Valid.size(); ++Len)
    expectDegradesOnly(Valid.substr(0, Len),
                       "truncation at " + std::to_string(Len));
}

TEST(LintExplainTortureTest, DeterministicGarbage) {
  uint64_t S = 0x9e3779b97f4a7c15ull;
  auto Next = [&S] {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  for (int Case = 0; Case != 50; ++Case) {
    std::string Source;
    size_t Len = Next() % 256;
    for (size_t I = 0; I != Len; ++I)
      Source += static_cast<char>(Next() & 0xff);
    expectDegradesOnly(Source, "garbage case " + std::to_string(Case));
  }
}

TEST(LintExplainTortureTest, ExplainUnderArmedFailpointDegrades) {
  // A throw inside any lint check (including the explain pass itself)
  // must surface as analysis-degraded, not an escaped exception.
  const std::string Valid = "do i = 1, 100 { A[i+2] = A[i] + X; }";
  for (unsigned Nth : {1u, 2u, 3u, 4u, 5u}) {
    failpoint::ScopedFailPoint FP("lint.check", failpoint::Action::Throw,
                                  Nth);
    LintOptions Opts;
    Opts.Explain = true;
    LintResult R = lintSource(Valid, "torture.arf", Opts);
    bool SawDegraded = false;
    for (const Diagnostic &D : R.Diags)
      SawDegraded |= D.CheckId == "analysis-degraded";
    EXPECT_TRUE(SawDegraded) << "nth=" << Nth;
  }
}
