//===- tests/lint/LintGoldenTest.cpp - Golden-file lint output tests -----===//
//
// Lints every bundled example program and compares the text rendering
// against a checked-in .expected file. Each program is linted with BOTH
// solver engines; the output must be identical (the golden file encodes
// the engine-independent truth) and the built-in cross-check must see
// zero divergences.
//
// To regenerate after an intentional diagnostic change:
//   cd examples/programs && for f in *.arf; do
//     ../../build/tools/ardf-lint --quiet $f >
//     ../../tests/lint/golden/${f%.arf}.expected; done
// (same loop with --format=sarif refreshes tests/lint/golden/sarif/.)
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include "lint/Render.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace ardf;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

class LintGoldenTest : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(LintGoldenTest, MatchesExpectedUnderBothEngines) {
  std::string Name = GetParam();
  std::string File = Name + ".arf";
  std::string Src = readFile(std::string(ARDF_EXAMPLES_DIR) + "/" + File);
  std::string Expected =
      readFile(std::string(ARDF_LINT_GOLDEN_DIR) + "/" + Name + ".expected");

  SourceMap Sources;
  Sources.add(File, Src);
  for (SolverOptions::Engine Eng : {SolverOptions::Engine::Reference,
                                    SolverOptions::Engine::PackedKernel}) {
    LintOptions Opts;
    Opts.Engine = Eng;
    LintResult R = lintSource(Src, File, Opts);
    EXPECT_EQ(R.EngineDivergences, 0u);
    EXPECT_FALSE(R.hasErrors());
    std::ostringstream OS;
    renderText(OS, R.Diags, Sources);
    EXPECT_EQ(OS.str(), Expected)
        << File << " with engine "
        << (Eng == SolverOptions::Engine::Reference ? "reference" : "packed");
  }
}

INSTANTIATE_TEST_SUITE_P(Examples, LintGoldenTest,
                         ::testing::Values("fig1", "fig4", "fig5", "nested",
                                           "stencil"));
