//===- tests/lint/LintExplainGoldenTest.cpp - --explain golden tests -----===//
//
// Lints fig4 and nested with remarks enabled and diffs both renderings
// against checked-in goldens: the text because-trail and the SARIF with
// codeFlows/threadFlows. Like the plain golden test, each program is
// linted under BOTH solver engines (the explain pass re-solves through
// the reference engine and cross-checks against the configured one, so
// the evidence must be engine-independent too).
//
// To regenerate after an intentional change:
//   cd examples/programs && for f in fig4 nested; do
//     ../../build/tools/ardf-lint --quiet --explain $f.arf >
//       ../../tests/lint/golden/explain/$f.expected
//     ../../build/tools/ardf-lint --format=sarif --explain $f.arf >
//       ../../tests/lint/golden/explain/$f.sarif
//   done
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include "lint/Render.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace ardf;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

class LintExplainGoldenTest : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(LintExplainGoldenTest, TextTrailMatchesExpectedUnderBothEngines) {
  std::string Name = GetParam();
  std::string File = Name + ".arf";
  std::string Src = readFile(std::string(ARDF_EXAMPLES_DIR) + "/" + File);
  std::string Expected = readFile(std::string(ARDF_LINT_GOLDEN_DIR) +
                                  "/explain/" + Name + ".expected");

  SourceMap Sources;
  Sources.add(File, Src);
  for (SolverOptions::Engine Eng : {SolverOptions::Engine::Reference,
                                    SolverOptions::Engine::PackedKernel}) {
    LintOptions Opts;
    Opts.Engine = Eng;
    Opts.Explain = true;
    LintResult R = lintSource(Src, File, Opts);
    EXPECT_EQ(R.EngineDivergences, 0u);
    EXPECT_FALSE(R.hasErrors());
    std::ostringstream OS;
    renderText(OS, R.Diags, Sources);
    EXPECT_EQ(OS.str(), Expected)
        << File << " with engine "
        << (Eng == SolverOptions::Engine::Reference ? "reference" : "packed");
  }
}

TEST_P(LintExplainGoldenTest, SarifWithCodeFlowsMatchesExpected) {
  std::string Name = GetParam();
  std::string File = Name + ".arf";
  std::string Src = readFile(std::string(ARDF_EXAMPLES_DIR) + "/" + File);
  std::string Expected = readFile(std::string(ARDF_LINT_GOLDEN_DIR) +
                                  "/explain/" + Name + ".sarif");

  LintOptions Opts;
  Opts.Explain = true;
  LintResult R = lintSource(Src, File, Opts);
  std::ostringstream OS;
  renderSarif(OS, R.Diags);
  std::string Got = OS.str();
  EXPECT_EQ(Got, Expected) << File;
  // The structural contract behind the byte diff: evidence flows out as
  // SARIF codeFlows/threadFlows and the derivation DAG rides along.
  EXPECT_NE(Got.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(Got.find("\"threadFlows\""), std::string::npos);
  EXPECT_NE(Got.find("\"derivation\""), std::string::npos);
}

TEST_P(LintExplainGoldenTest, ExplainFilterKeepsOnlyTheNamedCheck) {
  std::string Name = GetParam();
  std::string File = Name + ".arf";
  std::string Src = readFile(std::string(ARDF_EXAMPLES_DIR) + "/" + File);

  LintOptions Opts;
  Opts.Explain = true;
  Opts.ExplainCheck = "cross-iteration-conflict";
  LintResult R = lintSource(Src, File, Opts);
  for (const Diagnostic &D : R.Diags) {
    if (D.CheckId != "cross-iteration-conflict")
      EXPECT_FALSE(D.hasEvidence()) << D.CheckId;
  }
}

INSTANTIATE_TEST_SUITE_P(Examples, LintExplainGoldenTest,
                         ::testing::Values("fig4", "nested"));
