//===- tests/lint/LintDegradeTest.cpp - Graceful check degradation -------===//
//
// The lint engine under budgets and injected faults: a check whose
// backing solve degrades is skipped with an explicit analysis-degraded
// diagnostic (never findings derived from the conservative fill), a
// throwing check is isolated to itself, and degraded solves are not
// misreported as engine divergence.
//
//===----------------------------------------------------------------------===//

#include "lint/Checks.h"
#include "lint/LintEngine.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

const char *Fig1 = "array A[100]; array B[200]; array C[102];\n"
                   "do i = 1, 100 {\n"
                   "  C[i+2] = C[i] * 2;\n"
                   "  B[2*i] = C[i] + X;\n"
                   "  if (C[i] == 0) { C[i] = B[i-1]; }\n"
                   "  B[i] = C[i+1];\n"
                   "}\n";

unsigned countCheckId(const LintResult &R, const char *Id) {
  unsigned N = 0;
  for (const Diagnostic &D : R.Diags)
    N += D.CheckId == Id;
  return N;
}

class LintDegradeTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::disarmAll(); }
  void TearDown() override { failpoint::disarmAll(); }
};

} // namespace

TEST_F(LintDegradeTest, CleanRunHasNoDegradedChecks) {
  LintResult R = lintSource(Fig1, "fig1.arf");
  EXPECT_EQ(R.ChecksDegraded, 0u);
  EXPECT_EQ(countCheckId(R, checkid::AnalysisDegraded), 0u);
  EXPECT_EQ(R.EngineDivergences, 0u);
  EXPECT_GT(countCheckId(R, checkid::RedundantLoad), 0u);
}

TEST_F(LintDegradeTest, BudgetBreachSkipsEveryFrameworkCheck) {
  LintOptions Opts;
  Opts.Budget.MaxNodeVisits = 1;
  LintResult R = lintSource(Fig1, "fig1.arf");
  LintResult Tight = lintSource(Fig1, "fig1.arf", Opts);

  // Every framework check is skipped with its own diagnostic; none of
  // the clean run's findings survive (they would be derived from the
  // conservative fill).
  EXPECT_GE(Tight.ChecksDegraded, 4u);
  EXPECT_EQ(countCheckId(Tight, checkid::AnalysisDegraded),
            Tight.ChecksDegraded);
  EXPECT_EQ(countCheckId(Tight, checkid::RedundantLoad), 0u);
  EXPECT_EQ(countCheckId(Tight, checkid::DeadStore), 0u);
  EXPECT_EQ(countCheckId(Tight, checkid::LoopCarriedReuse), 0u);
  EXPECT_EQ(countCheckId(Tight, checkid::CrossIterationConflict), 0u);

  // Degraded solves must not be misreported as engine divergence.
  EXPECT_EQ(Tight.EngineDivergences, 0u);
  EXPECT_EQ(countCheckId(Tight, checkid::EngineDivergence), 0u);
  EXPECT_FALSE(Tight.hasErrors());

  // The degraded diagnostics point at the loop and name the reason.
  bool Found = false;
  for (const Diagnostic &D : Tight.Diags)
    if (D.CheckId == checkid::AnalysisDegraded) {
      Found = true;
      EXPECT_EQ(D.Severity, DiagSeverity::Warning);
      EXPECT_NE(D.Message.find("node-visits"), std::string::npos)
          << D.Message;
    }
  EXPECT_TRUE(Found);
  (void)R;
}

TEST_F(LintDegradeTest, SingleSolveBreachSkipsOnlyThatCheck) {
  LintOptions Opts;
  Opts.CrossCheck = false;
  // The first backing solve (redundant-load's delta-available problem)
  // breaches at its first pass boundary; every later solve is exact.
  failpoint::ScopedFailPoint FP("solver.pass", failpoint::Action::Breach,
                                /*FireAt=*/1);
  LintResult R = lintSource(Fig1, "fig1.arf", Opts);

  EXPECT_EQ(R.ChecksDegraded, 1u);
  ASSERT_EQ(countCheckId(R, checkid::AnalysisDegraded), 1u);
  for (const Diagnostic &D : R.Diags)
    if (D.CheckId == checkid::AnalysisDegraded) {
      EXPECT_NE(D.Message.find("redundant-load"), std::string::npos)
          << D.Message;
      EXPECT_NE(D.Message.find("fault-injected"), std::string::npos)
          << D.Message;
    }
  EXPECT_EQ(countCheckId(R, checkid::RedundantLoad), 0u);
  // The loop's other checks still ran and found their usual issues.
  EXPECT_GT(countCheckId(R, checkid::CrossIterationConflict), 0u);
  EXPECT_GT(countCheckId(R, checkid::LoopCarriedReuse), 0u);
}

TEST_F(LintDegradeTest, ThrowingCheckIsIsolated) {
  LintOptions Opts;
  Opts.CrossCheck = false;
  // The second check (dead-store) throws at entry; the other three
  // checks of the loop still run.
  failpoint::ScopedFailPoint FP("lint.check", failpoint::Action::Throw,
                                /*FireAt=*/2);
  LintResult R = lintSource(Fig1, "fig1.arf", Opts);

  EXPECT_EQ(R.LoopsAnalyzed, 1u);
  EXPECT_EQ(R.ChecksDegraded, 1u);
  bool Found = false;
  for (const Diagnostic &D : R.Diags)
    if (D.CheckId == checkid::AnalysisDegraded) {
      Found = true;
      EXPECT_NE(D.Message.find("dead-store"), std::string::npos);
      EXPECT_NE(D.Message.find("aborted"), std::string::npos);
    }
  EXPECT_TRUE(Found);
  EXPECT_GT(countCheckId(R, checkid::RedundantLoad), 0u);
  EXPECT_GT(countCheckId(R, checkid::CrossIterationConflict), 0u);
}

TEST_F(LintDegradeTest, CrossCheckGatesOnEitherEngineDegrading) {
  // An ordinal-armed breach can hit one engine's solve but not the
  // other's during the cross-check; that must surface as a degraded
  // cross-check, never as a (spurious) divergence error. Sweep the
  // ordinal so the breach lands at several different pass boundaries,
  // including inside the packed re-solves of the cross-check phase.
  for (uint64_t FireAt : {1u, 4u, 8u, 13u, 17u, 20u, 23u}) {
    failpoint::ScopedFailPoint FP("solver.pass", failpoint::Action::Breach,
                                  FireAt);
    LintResult R = lintSource(Fig1, "fig1.arf");
    EXPECT_EQ(R.EngineDivergences, 0u) << "FireAt=" << FireAt;
    EXPECT_EQ(countCheckId(R, checkid::EngineDivergence), 0u)
        << "FireAt=" << FireAt;
    EXPECT_FALSE(R.hasErrors()) << "FireAt=" << FireAt;
  }
}
