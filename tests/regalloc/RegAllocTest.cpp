//===- tests/regalloc/RegAllocTest.cpp - Live ranges, IRIG, coloring -----===//

#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "liverange/LiveRanges.h"
#include "regalloc/IRIG.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

struct Built {
  Program P;
  std::unique_ptr<LoopDataFlow> DF;
  std::vector<LiveRange> Ranges;
};

Built build(const char *Source, LiveRangeOptions Opts = {}) {
  Built B{parseOrDie(Source), nullptr, {}};
  B.DF = std::make_unique<LoopDataFlow>(B.P, *B.P.getFirstLoop(),
                                        ProblemSpec::availableValues());
  B.Ranges = buildLiveRanges(*B.DF, Opts);
  return B;
}

const LiveRange *findRange(const std::vector<LiveRange> &Ranges,
                           const std::string &Name) {
  for (const LiveRange &L : Ranges)
    if (L.Name == Name)
      return &L;
  return nullptr;
}

} // namespace

TEST(LiveRangeTest, Fig5PipelineRange) {
  // A[i+2] = A[i] + X: one subscripted range of depth 3 plus the scalar
  // input X.
  Built B = build("do i = 1, 1000 { A[i+2] = A[i] + X; }");
  const LiveRange *Pipe = findRange(B.Ranges, "A[i + 2]");
  ASSERT_NE(Pipe, nullptr);
  EXPECT_FALSE(Pipe->isScalar());
  EXPECT_EQ(Pipe->Depth, 3);
  EXPECT_EQ(Pipe->AccessCount, 2u);
  EXPECT_TRUE(Pipe->GeneratorIsDef);

  const LiveRange *X = findRange(B.Ranges, "X");
  ASSERT_NE(X, nullptr);
  EXPECT_TRUE(X->isScalar());
  EXPECT_EQ(X->Depth, 1);
}

TEST(LiveRangeTest, PriorityFavorsDenseReuse) {
  // More reuse points raise priority; deeper pipelines lower it.
  Built Dense = build("do i = 1, 100 { B[i] = A[i] + A[i] * 2; "
                      "C[i] = A[i]; }");
  Built Deep = build("do i = 1, 100 { A[i+6] = A[i]; }");
  const LiveRange *DenseR = findRange(Dense.Ranges, "A[i]");
  const LiveRange *DeepR = findRange(Deep.Ranges, "A[i + 6]");
  ASSERT_NE(DenseR, nullptr);
  ASSERT_NE(DeepR, nullptr);
  EXPECT_GT(DenseR->Priority, DeepR->Priority);
}

TEST(LiveRangeTest, DepthCapDropsDeepReuse) {
  LiveRangeOptions Opts;
  Opts.MaxDepth = 4;
  Built B = build("do i = 1, 100 { A[i+6] = A[i]; }", Opts);
  EXPECT_EQ(findRange(B.Ranges, "A[i + 6]"), nullptr);
}

TEST(LiveRangeTest, InductionVariableExcluded) {
  Built B = build("do i = 1, 10 { A[i] = i; }");
  EXPECT_EQ(findRange(B.Ranges, "i"), nullptr);
}

TEST(IRIGTest, UnconstrainedTest) {
  Built B = build("do i = 1, 1000 { A[i+2] = A[i] + X; }");
  IRIG G = buildIRIG(B.Ranges, B.DF->graph().getNumNodes());
  ASSERT_EQ(G.size(), 2u);
  EXPECT_TRUE(G.interfere(0, 1));
  // Total demand = 3 + 1 = 4.
  for (unsigned N = 0; N != G.size(); ++N) {
    EXPECT_TRUE(G.isUnconstrained(N, 4));
    EXPECT_FALSE(G.isUnconstrained(N, 3));
  }
}

TEST(IRIGTest, MultiColorAssignsDisjointConsecutiveBlocks) {
  Built B = build("do i = 1, 1000 { A[i+2] = A[i] + X; B[i+1] = B[i]; }");
  IRIG G = buildIRIG(B.Ranges, B.DF->graph().getNumNodes());
  ColoringResult R = multiColor(G, 8);
  EXPECT_TRUE(R.Spilled.empty());
  std::set<int> Used;
  for (unsigned N = 0; N != G.size(); ++N) {
    ASSERT_TRUE(R.isAllocated(N));
    ASSERT_EQ(R.Regs[N].size(), static_cast<size_t>(G.Ranges[N].Depth));
    for (size_t S = 0; S != R.Regs[N].size(); ++S) {
      // Consecutive stages.
      if (S) {
        EXPECT_EQ(R.Regs[N][S], R.Regs[N][S - 1] + 1);
      }
      // Disjoint across interfering ranges.
      EXPECT_TRUE(Used.insert(R.Regs[N][S]).second);
    }
  }
  EXPECT_LE(R.RegistersUsed, 8u);
}

TEST(IRIGTest, SpillsWhenRegistersExhausted) {
  Built B = build("do i = 1, 1000 { A[i+2] = A[i] + X; B[i+3] = B[i]; }");
  IRIG G = buildIRIG(B.Ranges, B.DF->graph().getNumNodes());
  // Demand: 3 (A) + 4 (B) + 1 (X) = 8; give only 5.
  ColoringResult R = multiColor(G, 5);
  EXPECT_FALSE(R.Spilled.empty());
  // Priority order decides who gets registers first: the deeper, lower
  // priority B pipeline is the one left in memory; the A pipeline keeps
  // its block. (A lower-priority range may still slot into leftover
  // registers a big pipeline cannot use -- first fit is not a strict
  // priority cut.)
  bool ASpilled = false, BSpilled = false;
  for (unsigned N : R.Spilled) {
    ASpilled |= G.Ranges[N].Name == "A[i + 2]";
    BSpilled |= G.Ranges[N].Name == "B[i + 3]";
  }
  EXPECT_FALSE(ASpilled);
  EXPECT_TRUE(BSpilled);
}

TEST(IRIGTest, ZeroRegistersSpillsEverything) {
  Built B = build("do i = 1, 10 { A[i+1] = A[i]; }");
  IRIG G = buildIRIG(B.Ranges, B.DF->graph().getNumNodes());
  ColoringResult R = multiColor(G, 0);
  EXPECT_EQ(R.Spilled.size(), G.size());
}
