//===- tests/driver/DriverTest.cpp - Whole-program batched driver --------===//

#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

using namespace ardf;

namespace {

/// A deterministic multi-loop program: \p Loops top-level loops with
/// varied recurrent bodies, every third one with a conditional store.
std::string multiLoopSource(unsigned Loops) {
  std::ostringstream OS;
  for (unsigned L = 0; L != Loops; ++L) {
    OS << "do i = 1, " << (100 + L) << " {\n";
    OS << "  A[i+" << (L % 3 + 1) << "] = A[i] + B[i-" << (L % 2) << "];\n";
    if (L % 3 == 0)
      OS << "  if (B[i] > 0) { B[i+1] = A[i-1]; }\n";
    OS << "  C[i] = C[i-2] + " << L << ";\n";
    OS << "}\n";
  }
  return OS.str();
}

const char *NestedSource = R"(
  do i = 1, 100 {
    A[i] = A[i-1] + 1;
    do j = 1, 10 {
      B[j+1] = B[j] + A[i];
    }
  }
  if (X > 0) {
    do k = 1, 50 { C[k+2] = C[k]; }
  }
)";

} // namespace

TEST(DriverTest, EnumeratesLoopsInnermostFirst) {
  Program P = parseOrDie(NestedSource);
  ProgramAnalysisDriver Driver(P);
  ASSERT_EQ(Driver.loops().size(), 3u);
  // Innermost (depth 1) before the top-level loops, which stay in
  // program order.
  EXPECT_EQ(Driver.loops()[0].Depth, 1u);
  EXPECT_EQ(Driver.loops()[0].Loop->getIndVar(), "j");
  EXPECT_EQ(Driver.loops()[1].Loop->getIndVar(), "i");
  EXPECT_EQ(Driver.loops()[2].Loop->getIndVar(), "k");
}

TEST(DriverTest, IncludeNestedOffAnalyzesTopLevelOnly) {
  Program P = parseOrDie(NestedSource);
  DriverOptions Opts;
  Opts.IncludeNested = false;
  ProgramAnalysisDriver Driver(P, Opts);
  ASSERT_EQ(Driver.loops().size(), 2u);
  EXPECT_EQ(Driver.loops()[0].Loop->getIndVar(), "i");
  EXPECT_EQ(Driver.loops()[1].Loop->getIndVar(), "k");
}

TEST(DriverTest, RunSolvesEveryProblemOnEveryLoop) {
  Program P = parseOrDie(multiLoopSource(6));
  ProgramAnalysisDriver Driver(P);
  Driver.run();
  unsigned Sum = 0;
  for (const AnalyzedLoop &R : Driver.loops()) {
    ASSERT_NE(R.Session, nullptr);
    EXPECT_EQ(R.Session->solvesPerformed(), paperProblems().size());
    EXPECT_GT(R.NodeVisits, 0u);
    Sum += R.NodeVisits;
  }
  EXPECT_EQ(Driver.totalNodeVisits(), Sum);

  // run() is idempotent: a second call must not re-analyze.
  Driver.run();
  EXPECT_EQ(Driver.totalNodeVisits(), Sum);
}

namespace {

/// Serial and 4-thread parallel runs of the same program must agree
/// bit-for-bit, whichever solver engine the driver forwards.
void expectParallelMatchesSerial(SolverOptions::Engine Eng) {
  Program P = parseOrDie(multiLoopSource(12));

  DriverOptions Ser;
  Ser.Solver.Eng = Eng;
  ProgramAnalysisDriver Serial(P, Ser);
  Serial.run();

  DriverOptions Par;
  Par.Threads = 4;
  Par.Solver.Eng = Eng;
  ProgramAnalysisDriver Parallel(P, Par);
  Parallel.run();

  ASSERT_EQ(Serial.loops().size(), Parallel.loops().size());
  EXPECT_EQ(Serial.totalNodeVisits(), Parallel.totalNodeVisits());
  for (size_t I = 0; I != Serial.loops().size(); ++I) {
    const AnalyzedLoop &S = Serial.loops()[I];
    const AnalyzedLoop &Q = Parallel.loops()[I];
    // Each driver owns its reduced forms, so pointers differ across
    // instances; the source statements and reduced structure must agree.
    ASSERT_EQ(S.Source, Q.Source);
    ASSERT_NE(S.Loop, nullptr);
    ASSERT_NE(Q.Loop, nullptr);
    ASSERT_TRUE(S.Loop->equals(*Q.Loop));
    EXPECT_EQ(S.NodeVisits, Q.NodeVisits);
    for (const ProblemSpec &Spec : paperProblems()) {
      // solve() only reads the memoized result here; run() already
      // solved every problem.
      const SolveResult &A = S.Session->solve(Spec, Ser.Solver);
      const SolveResult &B = Q.Session->solve(Spec, Par.Solver);
      EXPECT_EQ(A.In, B.In) << "loop " << I << " / " << Spec.Name;
      EXPECT_EQ(A.Out, B.Out) << "loop " << I << " / " << Spec.Name;
      EXPECT_EQ(A.NodeVisits, B.NodeVisits);
    }
    EXPECT_EQ(S.Session->solvesPerformed(), Q.Session->solvesPerformed());
  }
}

} // namespace

TEST(DriverTest, ParallelRunMatchesSerialRun) {
  expectParallelMatchesSerial(SolverOptions::Engine::Reference);
}

TEST(DriverTest, ParallelRunMatchesSerialRunPackedKernel) {
  expectParallelMatchesSerial(SolverOptions::Engine::PackedKernel);
}

TEST(DriverTest, ParallelRunMergesWorkerTelemetry) {
  Program P = parseOrDie(multiLoopSource(8));

  // Serial run under telemetry: the reference counter values.
  telem::Telemetry Serial;
  {
    telem::TelemetryScope Scope(Serial);
    ProgramAnalysisDriver Driver(P);
    Driver.run();
  }
  EXPECT_EQ(Serial.get(telem::Counter::DriverLoops), 8u);

  // Parallel run: counters merge to identical totals, and the spans the
  // workers recorded land in the root sink with their worker thread ids
  // (> 0) intact.
  telem::Telemetry Root;
  telem::MemoryTraceSink Sink;
  Root.setSink(&Sink);
  {
    telem::TelemetryScope Scope(Root);
    DriverOptions Opts;
    Opts.Threads = 4;
    ProgramAnalysisDriver Driver(P, Opts);
    Driver.run();
  }
  for (telem::Counter C :
       {telem::Counter::DriverLoops, telem::Counter::SolverNodeVisits,
        telem::Counter::SolverMeetOps, telem::Counter::SolverApplyOps,
        telem::Counter::SessionsBuilt,
        telem::Counter::SessionSolutionMisses})
    EXPECT_EQ(Root.get(C), Serial.get(C)) << telem::counterName(C);

  // Nest discovery runs on the root thread (tid 0) before the workers
  // start, so only the per-loop spans carry worker thread ids.
  unsigned LoopSpans = 0;
  std::set<uint32_t> Tids;
  for (const telem::TraceEvent &E : Sink.events()) {
    if (E.Name != "loop")
      continue;
    ++LoopSpans;
    Tids.insert(E.Tid);
  }
  EXPECT_EQ(LoopSpans, 8u);
  EXPECT_TRUE(std::all_of(Tids.begin(), Tids.end(),
                          [](uint32_t T) { return T >= 1; }));
}

TEST(DriverTest, ParallelRunWithoutTelemetryRecordsNothing) {
  ASSERT_EQ(telem::Telemetry::current(), nullptr);
  Program P = parseOrDie(multiLoopSource(4));
  DriverOptions Opts;
  Opts.Threads = 2;
  ProgramAnalysisDriver Driver(P, Opts);
  Driver.run(); // must not crash reaching for a null root context
  EXPECT_GT(Driver.totalNodeVisits(), 0u);
}

TEST(DriverTest, EnginesAgreeAcrossWholeProgram) {
  Program P = parseOrDie(multiLoopSource(8));

  DriverOptions Ref;
  ProgramAnalysisDriver RefDriver(P, Ref);
  RefDriver.run();

  DriverOptions Packed;
  Packed.Solver.Eng = SolverOptions::Engine::PackedKernel;
  ProgramAnalysisDriver PackedDriver(P, Packed);
  PackedDriver.run();

  ASSERT_EQ(RefDriver.loops().size(), PackedDriver.loops().size());
  EXPECT_EQ(RefDriver.totalNodeVisits(), PackedDriver.totalNodeVisits());
  for (size_t I = 0; I != RefDriver.loops().size(); ++I) {
    for (const ProblemSpec &Spec : paperProblems()) {
      const SolveResult &A =
          RefDriver.loops()[I].Session->solve(Spec, Ref.Solver);
      const SolveResult &B =
          PackedDriver.loops()[I].Session->solve(Spec, Packed.Solver);
      EXPECT_EQ(A.In, B.In) << "loop " << I << " / " << Spec.Name;
      EXPECT_EQ(A.Out, B.Out) << "loop " << I << " / " << Spec.Name;
    }
  }
}

TEST(DriverTest, MoreThreadsThanLoops) {
  Program P = parseOrDie(multiLoopSource(2));
  DriverOptions Opts;
  Opts.Threads = 8;
  ProgramAnalysisDriver Driver(P, Opts);
  Driver.run();
  EXPECT_EQ(Driver.loops().size(), 2u);
  EXPECT_GT(Driver.totalNodeVisits(), 0u);
}

TEST(DriverTest, SessionForBuildsLazilyBeforeRun) {
  Program P = parseOrDie(NestedSource);
  ProgramAnalysisDriver Driver(P);
  const DoLoopStmt *TopLevel = Driver.loops()[1].Loop;

  LoopAnalysisSession *Session = Driver.sessionFor(*TopLevel);
  ASSERT_NE(Session, nullptr);
  EXPECT_EQ(Session->solvesPerformed(), 0u);
  EXPECT_EQ(&Session->loop(), TopLevel);

  // The driver hands back the same session afterwards, and run() reuses
  // it rather than rebuilding.
  Session->solve(ProblemSpec::availableValues());
  EXPECT_EQ(Driver.sessionFor(*TopLevel), Session);
  Driver.run();
  EXPECT_EQ(Driver.sessionFor(*TopLevel), Session);
  EXPECT_EQ(Session->solvesPerformed(), paperProblems().size());
}

TEST(DriverTest, SessionForUnknownLoopIsNull) {
  Program P = parseOrDie(NestedSource);
  Program Other = parseOrDie("do m = 1, 10 { A[m] = m; }");
  ProgramAnalysisDriver Driver(P);
  EXPECT_EQ(Driver.sessionFor(*Other.getFirstLoop()), nullptr);
}

TEST(DriverTest, CustomProblemListAndOptions) {
  Program P = parseOrDie(multiLoopSource(3));
  DriverOptions Opts;
  Opts.Problems = {ProblemSpec::availableValues()};
  Opts.Solver.Strat = SolverOptions::Strategy::IterateToFixpoint;
  ProgramAnalysisDriver Driver(P, Opts);
  Driver.run();
  for (const AnalyzedLoop &R : Driver.loops()) {
    EXPECT_EQ(R.Session->solvesPerformed(), 1u);
    EXPECT_TRUE(R.Session->solve(ProblemSpec::availableValues(),
                                 Opts.Solver)
                    .Converged);
  }
}

TEST(DriverTest, EmptyProgram) {
  Program P = parseOrDie("x = 1;");
  ProgramAnalysisDriver Driver(P);
  Driver.run();
  EXPECT_TRUE(Driver.loops().empty());
  EXPECT_EQ(Driver.totalNodeVisits(), 0u);
}
