//===- tests/driver/DriverFaultTest.cpp - Per-loop fault isolation -------===//
//
// The driver's fault boundary: an exception in one loop's analysis --
// injected via the driver.loop / session.lower failpoints -- is captured
// as a structured LoopFailure, the batch always completes, unaffected
// loops are bit-identical to an unarmed run, and the report tallies
// ok/degraded/failed. Parallel workers never propagate a throw.
//
//===----------------------------------------------------------------------===//

#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ardf;

namespace {

std::string multiLoopSource(unsigned Loops) {
  std::ostringstream OS;
  for (unsigned L = 0; L != Loops; ++L) {
    OS << "do i = 1, " << (50 + L) << " {\n";
    OS << "  A[i+" << (L % 3 + 1) << "] = A[i] + B[i-" << (L % 2) << "];\n";
    OS << "  C[i] = C[i-2] + " << L << ";\n";
    OS << "}\n";
  }
  return OS.str();
}

class DriverFaultTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::disarmAll(); }
  void TearDown() override { failpoint::disarmAll(); }
};

} // namespace

TEST_F(DriverFaultTest, ThrownLoopIsCapturedAndBatchCompletes) {
  Program P = parseOrDie(multiLoopSource(5));

  // Reference run, nothing armed.
  ProgramAnalysisDriver Clean(P);
  Clean.run();
  ASSERT_EQ(Clean.loops().size(), 5u);
  EXPECT_EQ(Clean.report().Ok, 5u);

  // Armed run: the third loop's analysis throws at entry.
  failpoint::ScopedFailPoint FP("driver.loop", failpoint::Action::Throw,
                                /*FireAt=*/3);
  ProgramAnalysisDriver Driver(P);
  Driver.run(); // must not propagate
  ASSERT_EQ(Driver.loops().size(), 5u);

  DriverReport R = Driver.report();
  EXPECT_EQ(R.Ok, 4u);
  EXPECT_EQ(R.Degraded, 0u);
  EXPECT_EQ(R.Failed, 1u);
  EXPECT_EQ(R.total(), 5u);

  const AnalyzedLoop &Failed = Driver.loops()[2];
  EXPECT_EQ(Failed.Status, SolveOutcome::Failed);
  ASSERT_EQ(Failed.Failures.size(), 1u);
  EXPECT_EQ(Failed.Failures[0].Phase, "session");
  EXPECT_NE(Failed.Failures[0].Message.find("driver.loop"),
            std::string::npos);

  // Unaffected loops are bit-identical to the clean run.
  SolverOptions Opts;
  for (size_t I = 0; I != 5; ++I) {
    if (I == 2)
      continue;
    const AnalyzedLoop &A = Clean.loops()[I];
    const AnalyzedLoop &B = Driver.loops()[I];
    EXPECT_EQ(B.Status, SolveOutcome::Ok);
    for (const ProblemSpec &Spec : paperProblems()) {
      const SolveResult &X = A.Session->solve(Spec, Opts);
      const SolveResult &Y = B.Session->solve(Spec, Opts);
      EXPECT_EQ(X.In, Y.In) << "loop " << I << " / " << Spec.Name;
      EXPECT_EQ(X.Out, Y.Out) << "loop " << I << " / " << Spec.Name;
    }
  }
}

TEST_F(DriverFaultTest, SessionLowerFaultFailsSolvesNotTheBatch) {
  Program P = parseOrDie(multiLoopSource(3));
  DriverOptions Opts;
  Opts.Solver.Eng = SolverOptions::Engine::PackedKernel;

  // Every compiled-flow lowering throws: each packed solve of every
  // loop fails, each with its own structured record.
  failpoint::ScopedFailPoint FP("session.lower", failpoint::Action::Throw);
  ProgramAnalysisDriver Driver(P, Opts);
  Driver.run();

  DriverReport R = Driver.report();
  EXPECT_EQ(R.Failed, 3u);
  for (const AnalyzedLoop &L : Driver.loops()) {
    EXPECT_EQ(L.Status, SolveOutcome::Failed);
    ASSERT_EQ(L.Failures.size(), paperProblems().size());
    for (size_t I = 0; I != L.Failures.size(); ++I) {
      EXPECT_EQ(L.Failures[I].Phase,
                std::string("solve:") + paperProblems()[I].Name);
      EXPECT_NE(L.Failures[I].Message.find("session.lower"),
                std::string::npos);
    }
  }
}

TEST_F(DriverFaultTest, BudgetBreachReportsDegradedLoops) {
  Program P = parseOrDie(multiLoopSource(4));
  DriverOptions Opts;
  Opts.Solver.Budget.MaxNodeVisits = 1;
  ProgramAnalysisDriver Driver(P, Opts);
  Driver.run();

  DriverReport R = Driver.report();
  EXPECT_EQ(R.Ok, 0u);
  EXPECT_EQ(R.Degraded, 4u);
  EXPECT_EQ(R.Failed, 0u);
  for (const AnalyzedLoop &L : Driver.loops()) {
    EXPECT_EQ(L.Status, SolveOutcome::Degraded);
    EXPECT_EQ(L.Breach, BreachReason::NodeVisits);
    EXPECT_TRUE(L.Failures.empty()); // degraded, not failed
  }
}

TEST_F(DriverFaultTest, ParallelWorkersNeverPropagate) {
  Program P = parseOrDie(multiLoopSource(8));
  DriverOptions Opts;
  Opts.Threads = 4;
  failpoint::ScopedFailPoint FP("driver.loop", failpoint::Action::Throw,
                                /*FireAt=*/2);
  ProgramAnalysisDriver Driver(P, Opts);
  Driver.run(); // a throw crossing a worker would terminate the process

  DriverReport R = Driver.report();
  EXPECT_EQ(R.total(), 8u);
  EXPECT_EQ(R.Failed, 1u);
  EXPECT_EQ(R.Ok, 7u);
}

TEST_F(DriverFaultTest, EnginesDegradeIdenticallyUnderSameFault) {
  // The same armed failpoint must hit the same solve at the same pass
  // boundary in both engines, leaving identical per-loop statuses and
  // bit-identical (degraded and exact) results.
  Program P = parseOrDie(multiLoopSource(4));

  DriverOptions Ref;
  DriverOptions Packed;
  Packed.Solver.Eng = SolverOptions::Engine::PackedKernel;

  auto RunArmed = [&](const DriverOptions &Opts) {
    failpoint::ScopedFailPoint FP("solver.pass", failpoint::Action::Breach,
                                  /*FireAt=*/5);
    auto Driver = std::make_unique<ProgramAnalysisDriver>(P, Opts);
    Driver->run();
    return Driver;
  };
  auto RefDriver = RunArmed(Ref);
  auto PackedDriver = RunArmed(Packed);

  ASSERT_EQ(RefDriver->loops().size(), PackedDriver->loops().size());
  unsigned DegradedLoops = 0;
  for (size_t I = 0; I != RefDriver->loops().size(); ++I) {
    const AnalyzedLoop &A = RefDriver->loops()[I];
    const AnalyzedLoop &B = PackedDriver->loops()[I];
    EXPECT_EQ(A.Status, B.Status) << "loop " << I;
    EXPECT_EQ(A.Breach, B.Breach) << "loop " << I;
    DegradedLoops += A.Status == SolveOutcome::Degraded;
    for (const ProblemSpec &Spec : paperProblems()) {
      const SolveResult &X = A.Session->solve(Spec, Ref.Solver);
      const SolveResult &Y = B.Session->solve(Spec, Packed.Solver);
      EXPECT_EQ(X.Outcome, Y.Outcome) << "loop " << I << " / " << Spec.Name;
      EXPECT_EQ(X.In, Y.In) << "loop " << I << " / " << Spec.Name;
      EXPECT_EQ(X.Out, Y.Out) << "loop " << I << " / " << Spec.Name;
    }
  }
  EXPECT_EQ(DegradedLoops, 1u);
}

TEST_F(DriverFaultTest, LoopFailuresAreCounted) {
  Program P = parseOrDie(multiLoopSource(3));
  telem::Telemetry T;
  {
    telem::TelemetryScope Scope(T);
    failpoint::ScopedFailPoint FP("driver.loop", failpoint::Action::Throw,
                                  /*FireAt=*/1);
    ProgramAnalysisDriver Driver(P);
    Driver.run();
  }
  EXPECT_EQ(T.get(telem::Counter::LoopFailures), 1u);
  EXPECT_GE(T.get(telem::Counter::FailpointHits), 1u);
}
