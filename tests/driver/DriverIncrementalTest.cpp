//===- tests/driver/DriverIncrementalTest.cpp - Warm rerun diffing -------===//
//
// ProgramAnalysisDriver::rerun: the structural diff must carry every
// unchanged loop's record -- session, memoized summaries, solutions --
// across an edit untouched (zero solver work, zero summary lowerings),
// re-analyze exactly the edited/new loops, and end bit-identical to a
// cold analysis of the new program, serial and threaded.
//
//===----------------------------------------------------------------------===//

#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace ardf;

namespace {

/// \p Loops top-level loops over shared arrays; loop \p Edited (if in
/// range) gets a different recurrence offset, everything else is
/// byte-identical across calls.
std::string multiLoopSource(unsigned Loops, int Edited = -1,
                            const char *Decls =
                                "array A[200]; array B[200]; array C[200];\n") {
  std::ostringstream OS;
  OS << Decls;
  for (unsigned L = 0; L != Loops; ++L) {
    bool IsEdited = static_cast<int>(L) == Edited;
    OS << "do i = 1, " << (100 + L) << " {\n";
    OS << "  A[i+" << (IsEdited ? 3 : L % 2 + 1) << "] = A[i] + B[i];\n";
    if (L % 3 == 0)
      OS << "  if (B[i] > 0) { B[i+1] = A[i-1]; }\n";
    OS << "  C[i] = C[i-2] + " << L << ";\n";
    OS << "}\n";
  }
  return OS.str();
}

/// Driver options running the summary engine inline (counters land in
/// the caller's telemetry scope).
DriverOptions summaryOptions(unsigned Threads = 1) {
  DriverOptions Opts;
  Opts.Threads = Threads;
  Opts.Solver.Eng = SolverOptions::Engine::Summary;
  return Opts;
}

/// Every loop's every-problem solution must agree bit for bit between
/// the two drivers (same loop order: collect is deterministic).
void expectSameSolutions(ProgramAnalysisDriver &A,
                         ProgramAnalysisDriver &B) {
  ASSERT_EQ(A.loops().size(), B.loops().size());
  for (size_t I = 0; I != A.loops().size(); ++I) {
    LoopAnalysisSession *SA = A.loops()[I].Session.get();
    LoopAnalysisSession *SB = B.loops()[I].Session.get();
    ASSERT_NE(SA, nullptr);
    ASSERT_NE(SB, nullptr);
    for (const ProblemSpec &Spec : paperProblems()) {
      const SolveResult &RA = SA->solve(Spec, A.options().Solver);
      const SolveResult &RB = SB->solve(Spec, B.options().Solver);
      EXPECT_EQ(RA.In, RB.In) << "loop " << I << " " << Spec.Name;
      EXPECT_EQ(RA.Out, RB.Out) << "loop " << I << " " << Spec.Name;
    }
  }
}

} // namespace

TEST(DriverIncrementalTest, UnchangedProgramReusesEveryLoop) {
  Program A = parseOrDie(multiLoopSource(5));
  Program B = parseOrDie(multiLoopSource(5));
  ProgramAnalysisDriver Driver(A, summaryOptions());
  Driver.run();
  std::vector<const LoopAnalysisSession *> Sessions;
  std::vector<const DoLoopStmt *> OldLoops;
  for (const AnalyzedLoop &R : Driver.loops()) {
    Sessions.push_back(R.Session.get());
    OldLoops.push_back(R.Loop);
  }

  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  DriverRerun Diff = Driver.rerun(B);
  EXPECT_EQ(Diff.Reused, 5u);
  EXPECT_EQ(Diff.Reanalyzed, 0u);
  // No solver work at all: no lowerings, no applies, no driver loops.
  EXPECT_EQ(Telem.get(telem::Counter::SummaryLowerings), 0u);
  EXPECT_EQ(Telem.get(telem::Counter::SummaryApplies), 0u);
  EXPECT_EQ(Telem.get(telem::Counter::DriverLoops), 0u);
  // The records now anchor to the new program's loops but keep their
  // old sessions (order is deterministic, so pairwise).
  ASSERT_EQ(Driver.loops().size(), 5u);
  EXPECT_EQ(&Driver.program(), &B);
  for (size_t I = 0; I != Sessions.size(); ++I) {
    EXPECT_EQ(Driver.loops()[I].Session.get(), Sessions[I]);
    EXPECT_NE(Driver.loops()[I].Loop, OldLoops[I]) << "loop " << I
        << " must be re-anchored into the new program";
  }
}

TEST(DriverIncrementalTest, OneEditReanalyzesExactlyThatLoop) {
  Program A = parseOrDie(multiLoopSource(5));
  Program B = parseOrDie(multiLoopSource(5, /*Edited=*/2));
  ProgramAnalysisDriver Driver(A, summaryOptions());
  Driver.run();

  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  DriverRerun Diff = Driver.rerun(B);
  EXPECT_EQ(Diff.Reused, 4u);
  EXPECT_EQ(Diff.Reanalyzed, 1u);
  // Exactly the edited loop's summaries were lowered: one per paper
  // problem, nothing for the carried loops.
  EXPECT_EQ(Telem.get(telem::Counter::SummaryLowerings),
            paperProblems().size());
  EXPECT_EQ(Telem.get(telem::Counter::DriverLoops), 1u);

  // The warm rerun must end exactly where a cold analysis of the new
  // program ends.
  ProgramAnalysisDriver Cold(B, summaryOptions());
  Cold.run();
  expectSameSolutions(Driver, Cold);
  EXPECT_EQ(Driver.report().Ok, Cold.report().Ok);
}

TEST(DriverIncrementalTest, AddedAndRemovedLoopsDiffCleanly) {
  Program A = parseOrDie(multiLoopSource(4));
  Program Grown = parseOrDie(multiLoopSource(5));
  Program Shrunk = parseOrDie(multiLoopSource(3));
  ProgramAnalysisDriver Driver(A, summaryOptions());
  Driver.run();

  // Appending a loop keeps all four old records and analyzes the new
  // one (bodies vary per index, so exactly loop 4 is new).
  DriverRerun Grow = Driver.rerun(Grown);
  EXPECT_EQ(Grow.Reused, 4u);
  EXPECT_EQ(Grow.Reanalyzed, 1u);
  EXPECT_EQ(Driver.loops().size(), 5u);
  EXPECT_EQ(Driver.report().total(), 5u);

  // Dropping loops just drops their records.
  DriverRerun Shrink = Driver.rerun(Shrunk);
  EXPECT_EQ(Shrink.Reused, 3u);
  EXPECT_EQ(Shrink.Reanalyzed, 0u);
  EXPECT_EQ(Driver.loops().size(), 3u);
}

TEST(DriverIncrementalTest, ArrayDeclEditInvalidatesEveryLoop) {
  // Declarations parameterize linearization, so a decl edit must force
  // a full re-analysis even though every loop body is unchanged.
  Program A = parseOrDie(multiLoopSource(4));
  Program B = parseOrDie(multiLoopSource(
      4, -1, "array A[999]; array B[200]; array C[200];\n"));
  ProgramAnalysisDriver Driver(A, summaryOptions());
  Driver.run();
  DriverRerun Diff = Driver.rerun(B);
  EXPECT_EQ(Diff.Reused, 0u);
  EXPECT_EQ(Diff.Reanalyzed, 4u);
  ProgramAnalysisDriver Cold(B, summaryOptions());
  Cold.run();
  expectSameSolutions(Driver, Cold);
}

TEST(DriverIncrementalTest, RerunBeforeRunRunsTheInitialBatch) {
  Program A = parseOrDie(multiLoopSource(3));
  Program B = parseOrDie(multiLoopSource(3, /*Edited=*/1));
  ProgramAnalysisDriver Driver(A, summaryOptions());
  // rerun without an explicit run(): the initial batch runs first, so
  // the diff sees fully analyzed records.
  DriverRerun Diff = Driver.rerun(B);
  EXPECT_EQ(Diff.Reused, 2u);
  EXPECT_EQ(Diff.Reanalyzed, 1u);
  EXPECT_EQ(Driver.report().total(), 3u);
}

TEST(DriverIncrementalTest, WhileLoopsDiffStructurally) {
  // rerun() diffs on the SOURCE statements (While::equals / structural
  // equality), not the reduced forms: an unchanged while program must
  // reuse everything, and editing one while must re-analyze only it.
  auto WhileSource = [](int EditedOffset) {
    std::ostringstream OS;
    OS << "array A[200];\n";
    OS << "i = 1;\n"
       << "while (i <= 50) {\n"
       << "  A[i+" << EditedOffset << "] = A[i] + 1;\n"
       << "  i = i + 1;\n"
       << "}\n";
    OS << "do k = 1, 40 { A[k+2] = A[k]; }\n";
    return OS.str();
  };
  Program A = parseOrDie(WhileSource(1));
  Program Same = parseOrDie(WhileSource(1));
  Program Edited = parseOrDie(WhileSource(3));

  ProgramAnalysisDriver Driver(A, summaryOptions());
  Driver.run();
  ASSERT_EQ(Driver.loops().size(), 2u);
  const LoopAnalysisSession *WhileSession = Driver.loops()[0].Session.get();
  ASSERT_TRUE(isa<WhileStmt>(Driver.loops()[0].Source));

  // Byte-identical program: both records carry over, sessions intact.
  DriverRerun Unchanged = Driver.rerun(Same);
  EXPECT_EQ(Unchanged.Reused, 2u);
  EXPECT_EQ(Unchanged.Reanalyzed, 0u);
  EXPECT_EQ(Driver.loops()[0].Session.get(), WhileSession);
  // Records re-anchor into the new program's source statements.
  EXPECT_TRUE(isa<WhileStmt>(Driver.loops()[0].Source));
  EXPECT_EQ(Driver.loops()[0].Source, Same.getStmts()[1].get());

  // Editing the while body re-analyzes the while, reuses the DO.
  DriverRerun Diff = Driver.rerun(Edited);
  EXPECT_EQ(Diff.Reused, 1u);
  EXPECT_EQ(Diff.Reanalyzed, 1u);
  EXPECT_NE(Driver.loops()[0].Session.get(), WhileSession);

  ProgramAnalysisDriver Cold(Edited, summaryOptions());
  Cold.run();
  expectSameSolutions(Driver, Cold);
}

TEST(DriverIncrementalTest, UnsupportedLoopsSurviveRerun) {
  // A loop the recognizer rejects has no session; rerun must carry the
  // unsupported record without touching it or crashing on a null Loop.
  const char *Source = "array A[100];\n"
                       "do i = 1, 50 { if (A[i] > 0) { break; } A[i] = 1; }\n"
                       "do j = 1, 50 { A[j+1] = A[j]; }\n";
  Program A = parseOrDie(Source);
  Program B = parseOrDie(Source);
  ProgramAnalysisDriver Driver(A, summaryOptions());
  Driver.run();
  ASSERT_EQ(Driver.loops().size(), 2u);
  EXPECT_EQ(Driver.report().Unsupported, 1u);
  EXPECT_EQ(Driver.report().Ok, 1u);
  EXPECT_EQ(Driver.report().total(), 2u);

  // Unsupported records never analyze, so they neither reuse nor
  // reanalyze: only the supported DO loop shows up in the diff tally.
  DriverRerun Diff = Driver.rerun(B);
  EXPECT_EQ(Diff.Reused, 1u);
  EXPECT_EQ(Diff.Reanalyzed, 0u);
  EXPECT_EQ(Driver.report().Unsupported, 1u);
  bool SawReason = false;
  for (const AnalyzedLoop &R : Driver.loops())
    if (!R.Loop)
      SawReason = !R.UnsupportedReason.empty();
  EXPECT_TRUE(SawReason);
}

TEST(DriverIncrementalTest, ThreadedRerunMatchesColdAnalysis) {
  Program A = parseOrDie(multiLoopSource(8));
  Program B = parseOrDie(multiLoopSource(8, /*Edited=*/5));
  ProgramAnalysisDriver Driver(A, summaryOptions(/*Threads=*/4));
  Driver.run();
  DriverRerun Diff = Driver.rerun(B);
  EXPECT_EQ(Diff.Reused, 7u);
  EXPECT_EQ(Diff.Reanalyzed, 1u);
  ProgramAnalysisDriver Cold(B, summaryOptions(/*Threads=*/4));
  Cold.run();
  expectSameSolutions(Driver, Cold);
}
