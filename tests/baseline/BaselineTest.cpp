//===- tests/baseline/BaselineTest.cpp - Baseline comparators ------------===//

#include "analysis/LoopDataFlow.h"
#include "baseline/DepScalarReplacement.h"
#include "baseline/DependenceTest.h"
#include "baseline/NaiveSolver.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(ClassicDepTest, GcdFiltersDisjointStrides) {
  // 2i and 2i+1: even vs odd cells never meet.
  ClassicDepVerdict V = classicDependenceTest(2, 0, 2, 1, 100);
  EXPECT_FALSE(V.MayDepend);
}

TEST(ClassicDepTest, ConsistentDistance) {
  ClassicDepVerdict V = classicDependenceTest(1, 2, 1, 0, 100);
  ASSERT_TRUE(V.MayDepend);
  ASSERT_TRUE(V.Distance.has_value());
  EXPECT_EQ(*V.Distance, 2);
}

TEST(ClassicDepTest, BoundsFilterFarApartRefs) {
  // A[i] vs A[i + 1000] over 100 iterations: ranges do not overlap.
  ClassicDepVerdict V = classicDependenceTest(1, 0, 1, 1000, 100);
  EXPECT_FALSE(V.MayDepend);
  // Unknown bound: the distance could be realized by a long enough
  // loop, so the test stays conservative.
  EXPECT_TRUE(classicDependenceTest(1, 0, 1, 1000, -1).MayDepend);
}

TEST(ClassicDepTest, InconsistentPairConservative) {
  ClassicDepVerdict V = classicDependenceTest(2, 0, 1, 0, 100);
  EXPECT_TRUE(V.MayDepend);
  EXPECT_FALSE(V.Distance.has_value());
}

TEST(ClassicDepTest, InvariantPair) {
  EXPECT_TRUE(classicDependenceTest(0, 5, 0, 5, 100).MayDepend);
  EXPECT_FALSE(classicDependenceTest(0, 5, 0, 7, 100).MayDepend);
}

TEST(BaselineSRTest, StraightLineParity) {
  // On straight-line loops the baseline matches the framework.
  Program P = parseOrDie("do i = 1, 100 { A[i+2] = A[i] + x; }");
  BaselineSRResult R = findReuseDependenceBased(P, *P.getFirstLoop());
  EXPECT_FALSE(R.BailedOnControlFlow);
  ASSERT_EQ(R.Reuses.size(), 1u);
  EXPECT_EQ(R.Reuses[0].SourceText, "A[i + 2]");
  EXPECT_EQ(R.Reuses[0].SinkText, "A[i]");
  EXPECT_EQ(R.Reuses[0].Distance, 2);
}

TEST(BaselineSRTest, KillScanBlocksOverwrittenValue) {
  // A[i] overwrites what A[i+1] produced before the use consumes it.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i+1] = x;
      A[i] = y;
      B[i] = A[i-1];
    })");
  BaselineSRResult R = findReuseDependenceBased(P, *P.getFirstLoop());
  // The value reaching A[i-1] comes from A[i] (distance 1), not from
  // A[i+1] (distance 2, killed in between).
  bool FromKilled = false, FromKiller = false;
  for (const BaselineReuse &Reuse : R.Reuses) {
    if (Reuse.SinkText != "A[i - 1]")
      continue;
    FromKilled |= Reuse.SourceText == "A[i + 1]";
    FromKiller |= Reuse.SourceText == "A[i]";
  }
  EXPECT_FALSE(FromKilled);
  EXPECT_TRUE(FromKiller);
}

TEST(BaselineSRTest, BailsOnConditionals) {
  // The paper's headline contrast (Section 5): flow-insensitive scalar
  // replacement gives up under conditional control flow, the framework
  // does not.
  const char *Source = R"(
    do i = 1, 100 {
      A[i+1] = B[i];
      if (B[i] > 0) { C[i] = A[i]; }
    })";
  Program P = parseOrDie(Source);
  BaselineSRResult Base = findReuseDependenceBased(P, *P.getFirstLoop());
  EXPECT_TRUE(Base.BailedOnControlFlow);
  EXPECT_TRUE(Base.Reuses.empty());

  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::availableValues());
  EXPECT_FALSE(DF.reusePairs(RefSelector::Uses).empty());
}

TEST(BaselineSRTest, BailsOnNonAffine) {
  Program P = parseOrDie("do i = 1, 100 { A[i*i] = A[i]; }");
  BaselineSRResult R = findReuseDependenceBased(P, *P.getFirstLoop());
  EXPECT_TRUE(R.BailedOnSubscripts);
}

namespace {

FrameworkInstance makeInstance(Program &P, ProblemSpec Spec,
                               std::unique_ptr<LoopFlowGraph> &Graph) {
  Graph = std::make_unique<LoopFlowGraph>(*P.getFirstLoop());
  return FrameworkInstance(*Graph, P, Spec);
}

} // namespace

TEST(NaiveSolverTest, SameSolutionMorePasses) {
  Program P = parseOrDie(R"(
    do i = 1, 1000 {
      C[i+2] = C[i] * 2;
      B[2*i] = C[i] + X;
      if (C[i] == 0) { C[i] = B[i-1]; }
      B[i] = C[i+1];
    })");
  std::unique_ptr<LoopFlowGraph> Graph;
  FrameworkInstance FW =
      makeInstance(P, ProblemSpec::mustReachingDefs(), Graph);
  SolveResult Paper = solveDataFlow(FW);
  SolveResult Naive = solveNaiveWorklist(FW);
  ASSERT_TRUE(Naive.Converged);
  EXPECT_EQ(Naive.In, Paper.In);
  EXPECT_EQ(Naive.Out, Paper.Out);
  // The paper schedule is never beaten by the pessimally seeded FIFO.
  EXPECT_LE(Paper.NodeVisits, Naive.NodeVisits);
}

TEST(NaiveSolverTest, MayProblemSameSolution) {
  Program P = parseOrDie("do i = 1, 100 { A[i+1] = A[i]; B[i] = A[i-1]; }");
  std::unique_ptr<LoopFlowGraph> Graph;
  FrameworkInstance FW =
      makeInstance(P, ProblemSpec::reachingReferences(), Graph);
  SolveResult Paper = solveDataFlow(FW);
  SolveResult Naive = solveNaiveWorklist(FW);
  ASSERT_TRUE(Naive.Converged);
  EXPECT_EQ(Naive.In, Paper.In);
}

TEST(NaiveSolverTest, PessimisticMayInitCrawls) {
  // Section 3.3: starting a may-problem from "no instances" needs on
  // the order of UB rounds; the paper's initial guess needs two passes.
  Program P = parseOrDie("do i = 1, 200 { A[i+1] = A[i]; }");
  std::unique_ptr<LoopFlowGraph> Graph;
  FrameworkInstance FW =
      makeInstance(P, ProblemSpec::reachingReferences(), Graph);
  NaiveSolverOptions Pess;
  Pess.PessimisticMayInit = true;
  SolveResult Slow = solveNaiveWorklist(FW, Pess);
  SolveResult Fast = solveDataFlow(FW);
  ASSERT_TRUE(Slow.Converged);
  EXPECT_EQ(Slow.In, Fast.In);
  // Crawling: at least ~UB node visits vs 2N for the paper schedule.
  EXPECT_GT(Slow.NodeVisits, 100u);
  EXPECT_EQ(Fast.NodeVisits, 2 * Graph->getNumNodes());
}

TEST(NaiveSolverTest, PessimisticMayInitDivergesOnUnknownBound) {
  // With an unknown trip count there is no saturation point: the naive
  // ascent never stabilizes (the paper's non-termination warning).
  Program P = parseOrDie("do i = 1, N { A[i+1] = A[i]; }");
  std::unique_ptr<LoopFlowGraph> Graph;
  FrameworkInstance FW =
      makeInstance(P, ProblemSpec::reachingReferences(), Graph);
  NaiveSolverOptions Pess;
  Pess.PessimisticMayInit = true;
  Pess.MaxNodeVisits = 5000;
  SolveResult Slow = solveNaiveWorklist(FW, Pess);
  EXPECT_FALSE(Slow.Converged);
}
