//===- tests/analysis/HierarchicalAnalysisTest.cpp - Whole programs ------===//

#include "analysis/HierarchicalAnalysis.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;

TEST(HierarchicalAnalysisTest, OrdersInnermostFirst) {
  Program P = parseOrDie(R"(
    do k = 1, 10 {
      do j = 1, 10 {
        do i = 1, 10 { A[i] = A[i-1]; }
      }
      do m = 1, 10 { B[m] = 0; }
    }
    do z = 1, 10 { C[z] = C[z-1]; }
  )");
  HierarchicalAnalysis HA(P, ProblemSpec::mustReachingDefs());
  ASSERT_EQ(HA.loops().size(), 5u);
  // Depths descend monotonically in analysis order.
  unsigned Last = 1000;
  for (const LoopResult &R : HA.loops()) {
    EXPECT_LE(R.Depth, Last);
    Last = R.Depth;
  }
  EXPECT_EQ(HA.loops().front().Loop->getIndVar(), "i");
  EXPECT_EQ(HA.loops().front().Depth, 2u);
}

TEST(HierarchicalAnalysisTest, ResultPerLoop) {
  Program P = parseOrDie(R"(
    do j = 1, 10 {
      do i = 1, 10 { A[i+1] = A[i]; }
      B[j+2] = B[j];
    }
  )");
  HierarchicalAnalysis HA(P, ProblemSpec::mustReachingDefs());
  const DoLoopStmt *Outer = P.getFirstLoop();
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());

  const LoopDataFlow *InnerDF = HA.resultFor(*Inner);
  const LoopDataFlow *OuterDF = HA.resultFor(*Outer);
  ASSERT_NE(InnerDF, nullptr);
  ASSERT_NE(OuterDF, nullptr);
  // The inner result tracks A, the outer tracks B (and sees the inner
  // loop only as a summary node).
  EXPECT_EQ(InnerDF->framework().getTracked(0).arrayName(), "A");
  bool OuterTracksB = false;
  for (unsigned I = 0; I != OuterDF->framework().getNumTracked(); ++I)
    OuterTracksB |= OuterDF->framework().getTracked(I).arrayName() == "B";
  EXPECT_TRUE(OuterTracksB);
}

TEST(HierarchicalAnalysisTest, ReusePairsTagged) {
  Program P = parseOrDie(R"(
    do j = 1, 10 {
      do i = 1, 10 { A[i+1] = A[i]; }
      B[j+2] = B[j];
    }
  )");
  HierarchicalAnalysis HA(P, ProblemSpec::mustReachingDefs());
  auto All = HA.allReusePairs(RefSelector::Uses);
  // A-reuse in the inner loop, B-reuse in the outer loop.
  bool InnerReuse = false, OuterReuse = false;
  for (const auto &T : All) {
    if (T.Loop->getIndVar() == "i")
      InnerReuse = true;
    if (T.Loop->getIndVar() == "j")
      OuterReuse = true;
  }
  EXPECT_TRUE(InnerReuse);
  EXPECT_TRUE(OuterReuse);
}

TEST(HierarchicalAnalysisTest, TotalCostIsSumOfLoops) {
  Program P = parseOrDie(R"(
    do a = 1, 10 { A[a] = 0; }
    do b = 1, 10 { B[b] = 0; C[b] = 1; }
  )");
  HierarchicalAnalysis HA(P, ProblemSpec::mustReachingDefs());
  unsigned Sum = 0;
  for (const LoopResult &R : HA.loops())
    Sum += R.DF->result().NodeVisits;
  EXPECT_EQ(HA.totalNodeVisits(), Sum);
  // 3N per loop.
  EXPECT_EQ(HA.loops()[0].DF->result().NodeVisits,
            3 * HA.loops()[0].DF->graph().getNumNodes());
}

TEST(HierarchicalAnalysisTest, LoopsInsideConditionals) {
  Program P = parseOrDie(R"(
    x = 1;
    if (x > 0) {
      do i = 1, 10 { A[i] = A[i-1]; }
    } else {
      do k = 1, 10 { B[k] = 0; }
    }
  )");
  HierarchicalAnalysis HA(P, ProblemSpec::mustReachingDefs());
  EXPECT_EQ(HA.loops().size(), 2u);
}

TEST(HierarchicalAnalysisTest, EmptyProgram) {
  Program P = parseOrDie("x = 1; y = 2;");
  HierarchicalAnalysis HA(P, ProblemSpec::mustReachingDefs());
  EXPECT_TRUE(HA.loops().empty());
  EXPECT_EQ(HA.totalNodeVisits(), 0u);
}
