//===- tests/analysis/LoopDataFlowTest.cpp - Facade and reuse pairs ------===//

#include "analysis/Dependence.h"
#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

/// Renders a reuse pair as "source -> sink @ d" for compact matching.
std::string pairText(const LoopDataFlow &DF, const ReusePair &P) {
  const ReferenceUniverse &U = DF.universe();
  return exprToString(*U.occurrence(P.SourceId).Ref) + " -> " +
         exprToString(*U.occurrence(P.SinkId).Ref) + " @ " +
         std::to_string(P.Distance);
}

bool hasPair(const LoopDataFlow &DF, const std::vector<ReusePair> &Pairs,
             const std::string &Text) {
  for (const ReusePair &P : Pairs)
    if (pairText(DF, P) == Text)
      return true;
  return false;
}

} // namespace

TEST(LoopDataFlowTest, Fig1ReuseConclusions) {
  // Section 3.5's three conclusions from the must-reaching solution.
  Program P = parseOrDie(R"(
    do i = 1, 1000 {
      C[i+2] = C[i] * 2;
      B[2*i] = C[i] + X;
      if (C[i] == 0) { C[i] = B[i-1]; }
      B[i] = C[i+1];
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::mustReachingDefs());
  std::vector<ReusePair> Pairs = DF.reusePairs(RefSelector::Uses);

  // "The uses of C[i] in nodes 1 and 2 reuse the value computed by
  //  definition C[i+2] two iterations earlier."
  int CiUses = 0;
  for (const ReusePair &Pair : Pairs)
    if (pairText(DF, Pair) == "C[i + 2] -> C[i] @ 2")
      ++CiUses;
  EXPECT_GE(CiUses, 2);

  // "The reference B[i-1] uses the value computed in node 4 one
  //  iteration earlier."
  EXPECT_TRUE(hasPair(DF, Pairs, "B[i] -> B[i - 1] @ 1"));

  // "The reference to C[i+1] uses the value computed by C[i+2] one
  //  iteration earlier."
  EXPECT_TRUE(hasPair(DF, Pairs, "C[i + 2] -> C[i + 1] @ 1"));
}

TEST(LoopDataFlowTest, ConditionalDefIsNotAMustSource) {
  // The guarded def C[i] must not claim must-reuse at C[i-1].
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      if (x == 0) { C[i] = 1; }
      y = C[i-1];
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::mustReachingDefs());
  std::vector<ReusePair> Pairs = DF.reusePairs(RefSelector::Uses);
  EXPECT_FALSE(hasPair(DF, Pairs, "C[i] -> C[i - 1] @ 1"));
}

TEST(LoopDataFlowTest, ConditionalDefIsAMaySource) {
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      if (x == 0) { C[i] = 1; }
      y = C[i-1];
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::reachingReferences());
  std::vector<ReusePair> Pairs = DF.reusePairs(RefSelector::Uses);
  EXPECT_TRUE(hasPair(DF, Pairs, "C[i] -> C[i - 1] @ 1"));
}

TEST(LoopDataFlowTest, AvailabilityAcrossBothBranches) {
  // Both branches load A[i]; the value is available at the join
  // regardless of the path.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      if (x == 0) { B[i] = A[i]; } else { C[i] = A[i]; }
      D[i] = A[i];
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::availableValues());
  std::vector<ReusePair> Pairs = DF.reusePairs(RefSelector::Uses);
  bool JoinUseCovered = false;
  for (const ReusePair &Pair : Pairs) {
    const RefOccurrence &Sink = DF.universe().occurrence(Pair.SinkId);
    if (Pair.Distance == 0 && !Sink.IsDef &&
        DF.graph().getNode(Sink.Node).StmtNumber == 3)
      JoinUseCovered = true;
  }
  EXPECT_TRUE(JoinUseCovered);
}

TEST(LoopDataFlowTest, BusyStoreReusePairsFlipRoles) {
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = 1;
      A[i+1] = 2;
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::busyStores());
  std::vector<ReusePair> Pairs = DF.reusePairs(RefSelector::Defs);
  // Sink A[i+1] is overwritten by source A[i] one iteration LATER.
  EXPECT_TRUE(hasPair(DF, Pairs, "A[i] -> A[i + 1] @ 1"));
}

TEST(DependenceTest, ClassicKinds) {
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i] = A[i-1] + 1;
      B[i] = A[i+1];
    })");
  DependenceInfo Info = computeDependences(P, *P.getFirstLoop());
  bool Flow = false, Anti = false, Output = false;
  for (const Dependence &D : Info.Deps) {
    if (D.Kind == DepKind::Flow && D.Distance == 1)
      Flow = true; // A[i] -> A[i-1] next iteration
    if (D.Kind == DepKind::Anti)
      Anti = true; // use A[i+1] before next iterations' def A[i]
    if (D.Kind == DepKind::Output)
      Output = true;
  }
  EXPECT_TRUE(Flow);
  EXPECT_TRUE(Anti);
  EXPECT_FALSE(Output);
  EXPECT_TRUE(Info.hasCarriedDistance(1));
}

TEST(DependenceTest, IndependentIterations) {
  Program P = parseOrDie("do i = 1, 100 { A[i] = B[i] + 1; }");
  DependenceInfo Info = computeDependences(P, *P.getFirstLoop());
  for (const Dependence &D : Info.Deps)
    EXPECT_FALSE(D.isLoopCarried()) << depKindName(D.Kind);
}

TEST(DependenceTest, OutputDependence) {
  Program P = parseOrDie("do i = 1, 100 { A[i] = 1; A[i+3] = 2; }");
  DependenceInfo Info = computeDependences(P, *P.getFirstLoop());
  bool Output3 = false;
  for (const Dependence &D : Info.Deps)
    if (D.Kind == DepKind::Output && D.Distance == 3)
      Output3 = true;
  EXPECT_TRUE(Output3);
}

TEST(DependenceTest, DistanceOneFilter) {
  Program P = parseOrDie("do i = 1, 100 { A[i+1] = A[i]; B[i+2] = B[i]; }");
  DependenceInfo Info = computeDependences(P, *P.getFirstLoop());
  std::vector<Dependence> D1 = Info.distanceOne();
  ASSERT_FALSE(D1.empty());
  for (const Dependence &D : D1)
    EXPECT_EQ(D.Distance, 1);
  EXPECT_TRUE(Info.hasCarriedDistance(2));
}

TEST(DependenceTest, InputDependencesOptIn) {
  Program P = parseOrDie("do i = 1, 100 { x = A[i]; y = A[i-1]; }");
  DependenceInfo NoInput = computeDependences(P, *P.getFirstLoop(), false);
  for (const Dependence &D : NoInput.Deps)
    EXPECT_NE(D.Kind, DepKind::Input);
  DependenceInfo WithInput = computeDependences(P, *P.getFirstLoop(), true);
  bool SawInput = false;
  for (const Dependence &D : WithInput.Deps)
    SawInput |= D.Kind == DepKind::Input;
  EXPECT_TRUE(SawInput);
}
