//===- tests/analysis/SessionOracleTest.cpp - Session vs fresh oracle ----===//

#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

const char *Corpus[] = {
    "do i = 1, 100 { A[i+2] = A[i] + X; }",
    "do i = 1, 1000 { A[i] = i; if (A[i] > 0) { A[i+1] = 99; } }",
    "do i = 1, 50 { if (B[i] > 0) { A[i+1] = B[i]; } else { A[i+1] = 0; } "
    "C[i] = A[i] + B[i-2]; }",
    "do i = 1, 20 { A[i] = B[i] + B[i-1]; do j = 1, 5 { C[j] = A[i]; } "
    "B[i+2] = A[i-1]; }",
};

ProblemSpec Specs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
    ProblemSpec::reachingReferences(),
    ProblemSpec::availableValuesPerOccurrence(),
    ProblemSpec::busyStoresPerOccurrence(),
};

} // namespace

TEST(SessionOracleTest, SessionSolvesMatchFreshSolves) {
  for (const char *Source : Corpus) {
    Program P = parseOrDie(Source);
    const DoLoopStmt &Loop = *P.getFirstLoop();
    LoopAnalysisSession Session(P, Loop);
    for (const ProblemSpec &Spec : Specs) {
      // Fresh path: everything rebuilt from scratch.
      LoopFlowGraph Graph(Loop);
      FrameworkInstance FW(Graph, P, Spec);
      SolveResult Fresh = solveDataFlow(FW);

      const SolveResult &Cached = Session.solve(Spec);
      EXPECT_EQ(Cached.In, Fresh.In) << Source << " / " << Spec.Name;
      EXPECT_EQ(Cached.Out, Fresh.Out) << Source << " / " << Spec.Name;
      EXPECT_EQ(Cached.NodeVisits, Fresh.NodeVisits);
      EXPECT_EQ(Cached.Passes, Fresh.Passes);
      EXPECT_EQ(Cached.Converged, Fresh.Converged);
    }
  }
}

TEST(SessionOracleTest, SolutionsAreMemoized) {
  Program P = parseOrDie(Corpus[2]);
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const SolveResult &A = Session.solve(ProblemSpec::availableValues());
  const SolveResult &B = Session.solve(ProblemSpec::availableValues());
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(Session.solvesPerformed(), 1u);

  // A different problem solves separately...
  Session.solve(ProblemSpec::busyStores());
  EXPECT_EQ(Session.solvesPerformed(), 2u);

  // ... and different solver options are a distinct cache entry.
  SolverOptions Fix;
  Fix.Strat = SolverOptions::Strategy::IterateToFixpoint;
  const SolveResult &C = Session.solve(ProblemSpec::availableValues(), Fix);
  EXPECT_NE(&A, &C);
  EXPECT_EQ(Session.solvesPerformed(), 3u);
}

TEST(SessionOracleTest, InstancesShareProblemIndependentTables) {
  Program P = parseOrDie(Corpus[1]);
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const FrameworkInstance &Avail =
      Session.instance(ProblemSpec::availableValues());
  const FrameworkInstance &Reach =
      Session.instance(ProblemSpec::mustReachingDefs());
  const FrameworkInstance &Busy = Session.instance(ProblemSpec::busyStores());
  EXPECT_EQ(Session.instancesBuilt(), 3u);

  // One universe, shared by every instance regardless of direction.
  EXPECT_EQ(&Avail.getUniverse(), &Session.universe());
  EXPECT_EQ(&Reach.getUniverse(), &Session.universe());
  EXPECT_EQ(&Busy.getUniverse(), &Session.universe());

  // Same-direction instances share one traversal order.
  EXPECT_EQ(&Avail.workingOrder(), &Reach.workingOrder());
  EXPECT_NE(&Avail.workingOrder(), &Busy.workingOrder());

  // Re-requesting an identical problem returns the memoized instance.
  EXPECT_EQ(&Avail, &Session.instance(ProblemSpec::availableValues()));
  EXPECT_EQ(Session.instancesBuilt(), 3u);
}

TEST(SessionOracleTest, WrapperThroughSharedSessionMatchesStandalone) {
  for (const char *Source : Corpus) {
    Program P = parseOrDie(Source);
    const DoLoopStmt &Loop = *P.getFirstLoop();
    LoopAnalysisSession Session(P, Loop);
    for (const ProblemSpec &Spec :
         {ProblemSpec::availableValuesPerOccurrence(),
          ProblemSpec::busyStoresPerOccurrence()}) {
      LoopDataFlow Standalone(P, Loop, Spec);
      LoopDataFlow Shared(Session, Spec);
      EXPECT_EQ(Shared.result().In, Standalone.result().In);
      EXPECT_EQ(Shared.result().Out, Standalone.result().Out);

      RefSelector Sel = Spec.isBackward() ? RefSelector::Defs
                                          : RefSelector::Uses;
      std::vector<ReusePair> A = Standalone.reusePairs(Sel);
      std::vector<ReusePair> B = Shared.reusePairs(Sel);
      ASSERT_EQ(A.size(), B.size()) << Source << " / " << Spec.Name;
      for (size_t I = 0; I != A.size(); ++I) {
        EXPECT_EQ(A[I].SourceId, B[I].SourceId);
        EXPECT_EQ(A[I].SinkId, B[I].SinkId);
        EXPECT_EQ(A[I].Distance, B[I].Distance);
      }
    }
  }
}

TEST(SessionOracleTest, WithRespectToMatchesStandaloneInstance) {
  // Section 3.6: analyze the inner body with respect to the outer
  // induction variable.
  Program P = parseOrDie(
      "do i = 1, 20 { do j = 1, 5 { A[i] = A[i-1] + C[j]; } }");
  const auto *Outer = P.getFirstLoop();
  const auto *Inner = dyn_cast<DoLoopStmt>(Outer->getBody().front().get());
  ASSERT_NE(Inner, nullptr);

  LoopFlowGraph Graph(*Inner);
  FrameworkInstance FW(Graph, P, ProblemSpec::availableValues(), "i", 20);
  SolveResult Fresh = solveDataFlow(FW);

  LoopAnalysisSession Session(P, *Inner, "i", 20);
  const SolveResult &Cached = Session.solve(ProblemSpec::availableValues());
  EXPECT_EQ(Cached.In, Fresh.In);
  EXPECT_EQ(Cached.Out, Fresh.Out);
  EXPECT_EQ(Session.tripCount(), 20);
}
