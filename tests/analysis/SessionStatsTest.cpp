//===- tests/analysis/SessionStatsTest.cpp - Session cache statistics ----===//
//
// The public cache-observability surface of LoopAnalysisSession: every
// memoization layer (framework instances, solutions, compiled flow
// programs, preserve constants) reports hits and misses through
// cacheStats(), and the same tallies are mirrored into the telemetry
// counters when a context is installed.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopAnalysisSession.h"
#include "frontend/Parser.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

const char *Source =
    "do i = 1, 100 { A[i] = B[i] + B[i-1]; B[i+2] = A[i-1]; "
    "C[i] = A[i] + B[i-2]; }";

struct Fixture {
  Program Prog;
  LoopAnalysisSession Session;
  explicit Fixture(const char *Src)
      : Prog(parseOrDie(Src)), Session(Prog, *Prog.getFirstLoop()) {}
};

} // namespace

TEST(SessionStatsTest, SecondIdenticalSolveIsASolutionHit) {
  Fixture F(Source);
  F.Session.solve(ProblemSpec::availableValues());
  SessionCacheStats S1 = F.Session.cacheStats();
  EXPECT_EQ(S1.SolutionHits, 0u);
  EXPECT_EQ(S1.SolutionMisses, 1u);

  F.Session.solve(ProblemSpec::availableValues());
  SessionCacheStats S2 = F.Session.cacheStats();
  EXPECT_EQ(S2.SolutionHits, 1u);
  EXPECT_EQ(S2.SolutionMisses, 1u);
}

TEST(SessionStatsTest, ChangedSpecIsASolutionMiss) {
  Fixture F(Source);
  F.Session.solve(ProblemSpec::availableValues());
  F.Session.solve(ProblemSpec::busyStores());
  SessionCacheStats S = F.Session.cacheStats();
  EXPECT_EQ(S.SolutionHits, 0u);
  EXPECT_EQ(S.SolutionMisses, 2u);
  // Changed solver options miss too: the packed engine caches its
  // solution separately from the reference engine's.
  SolverOptions Packed;
  Packed.Eng = SolverOptions::Engine::PackedKernel;
  F.Session.solve(ProblemSpec::availableValues(), Packed);
  EXPECT_EQ(F.Session.cacheStats().SolutionMisses, 3u);
}

TEST(SessionStatsTest, InstanceAndCompiledCachesReportHitsAndMisses) {
  Fixture F(Source);
  F.Session.instance(ProblemSpec::availableValues());
  F.Session.instance(ProblemSpec::availableValues());
  F.Session.compiledFlow(ProblemSpec::availableValues());
  F.Session.compiledFlow(ProblemSpec::availableValues());
  SessionCacheStats S = F.Session.cacheStats();
  EXPECT_EQ(S.InstanceMisses, 1u);
  // Three hits: the second instance() plus each compiledFlow() looking
  // up the instance record again.
  EXPECT_EQ(S.InstanceHits, 3u);
  EXPECT_EQ(S.CompiledMisses, 1u);
  EXPECT_EQ(S.CompiledHits, 1u);
}

TEST(SessionStatsTest, PreserveStatsComeFromTheSharedCache) {
  Fixture F(Source);
  F.Session.solve(ProblemSpec::availableValues());
  F.Session.solve(ProblemSpec::busyStores());
  SessionCacheStats S = F.Session.cacheStats();
  EXPECT_EQ(S.PreserveHits, F.Session.preserveCache().hits());
  EXPECT_EQ(S.PreserveMisses, F.Session.preserveCache().misses());
  EXPECT_GT(S.PreserveMisses, 0u);
}

TEST(SessionStatsTest, SolvesPerformedEqualsSolutionMisses) {
  Fixture F(Source);
  F.Session.solve(ProblemSpec::availableValues());
  F.Session.solve(ProblemSpec::availableValues());
  F.Session.solve(ProblemSpec::busyStores());
  EXPECT_EQ(F.Session.solvesPerformed(), 2u);
  EXPECT_EQ(F.Session.cacheStats().SolutionMisses, 2u);
}

TEST(SessionStatsTest, TelemetryMirrorsSessionTallies) {
  telem::Telemetry T;
  {
    telem::TelemetryScope Scope(T);
    Fixture F(Source);
    F.Session.solve(ProblemSpec::availableValues());
    F.Session.solve(ProblemSpec::availableValues());
    F.Session.solve(ProblemSpec::busyStores());
    SessionCacheStats S = F.Session.cacheStats();
    EXPECT_EQ(T.get(telem::Counter::SessionsBuilt), 1u);
    EXPECT_EQ(T.get(telem::Counter::SessionSolutionHits), S.SolutionHits);
    EXPECT_EQ(T.get(telem::Counter::SessionSolutionMisses),
              S.SolutionMisses);
    EXPECT_EQ(T.get(telem::Counter::SessionInstanceHits), S.InstanceHits);
    EXPECT_EQ(T.get(telem::Counter::SessionInstanceMisses),
              S.InstanceMisses);
    EXPECT_EQ(T.get(telem::Counter::PreserveHits), S.PreserveHits);
    EXPECT_EQ(T.get(telem::Counter::PreserveMisses), S.PreserveMisses);
  }
}

TEST(SessionStatsTest, NoTelemetryContextLeavesStatsWorking) {
  ASSERT_EQ(telem::Telemetry::current(), nullptr);
  Fixture F(Source);
  F.Session.solve(ProblemSpec::availableValues());
  EXPECT_EQ(F.Session.cacheStats().SolutionMisses, 1u);
}
