//===- tests/analysis/LoopNestTest.cpp - Nesting tree + reduction --------===//
//
// Oracle tests for analysis/LoopNest.h: the nesting forest is checked
// against hand-built expectations, while reduction against the exact DO
// loop it must produce, every rejection reason against the program shape
// that triggers it, and the reduced forms against all four solver
// engines (which must stay bit-identical on them).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopNest.h"

#include "analysis/LoopAnalysisSession.h"
#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

/// The unique node whose reduced induction variable is \p Iv.
const NestLoop *nodeWithIv(const LoopNestTree &T, const std::string &Iv) {
  const NestLoop *Found = nullptr;
  T.forEach([&](const NestLoop &N) {
    if (N.isSupported() && N.iv() == Iv)
      Found = &N;
  });
  return Found;
}

} // namespace

//===----------------------------------------------------------------------===//
// Forest shape
//===----------------------------------------------------------------------===//

TEST(LoopNestTest, ForestMatchesSyntax) {
  Program P = parseOrDie("do i = 1, 8 {\n"
                         "  do j = 1, 8 {\n"
                         "    do k = 1, 8 { x = x + 1; }\n"
                         "  }\n"
                         "  do m = 1, 8 { y = y + 1; }\n"
                         "}\n"
                         "do n = 1, 8 { z = z + 1; }\n");
  LoopNestTree T(P);
  ASSERT_EQ(T.size(), 5u);
  EXPECT_EQ(T.supportedCount(), 5u);
  EXPECT_EQ(T.unsupportedCount(), 0u);
  ASSERT_EQ(T.roots().size(), 2u);

  const NestLoop *I = nodeWithIv(T, "i"), *J = nodeWithIv(T, "j");
  const NestLoop *K = nodeWithIv(T, "k"), *M = nodeWithIv(T, "m");
  const NestLoop *N = nodeWithIv(T, "n");
  ASSERT_TRUE(I && J && K && M && N);

  // Parent/child links and depths.
  EXPECT_EQ(I->Parent, nullptr);
  EXPECT_EQ(J->Parent, I);
  EXPECT_EQ(K->Parent, J);
  EXPECT_EQ(M->Parent, I);
  EXPECT_EQ(N->Parent, nullptr);
  EXPECT_EQ(I->Depth, 0u);
  EXPECT_EQ(J->Depth, 1u);
  EXPECT_EQ(K->Depth, 2u);
  EXPECT_EQ(M->Depth, 1u);
  ASSERT_EQ(I->Children.size(), 2u);
  EXPECT_EQ(I->Children[0], J);
  EXPECT_EQ(I->Children[1], M);

  // Roots in source order.
  EXPECT_EQ(T.roots()[0], I);
  EXPECT_EQ(T.roots()[1], N);

  // Paths and ancestors.
  EXPECT_EQ(K->path(), "i/j/k");
  EXPECT_EQ(M->path(), "i/m");
  EXPECT_EQ(N->path(), "n");
  std::vector<const NestLoop *> Anc = K->ancestors();
  ASSERT_EQ(Anc.size(), 2u);
  EXPECT_EQ(Anc[0], I);
  EXPECT_EQ(Anc[1], J);

  // Pre-order: each node precedes its children.
  EXPECT_EQ(T.all()[0].get(), I);
  EXPECT_EQ(T.nodeFor(*I->Source), I);
  EXPECT_EQ(T.nodeFor(*K->Source), K);
  EXPECT_EQ(T.nodeFor(*P.getStmts()[0]->clone()), nullptr);
}

//===----------------------------------------------------------------------===//
// While recognition
//===----------------------------------------------------------------------===//

TEST(LoopNestTest, CountedWhileReducesToTheExactDoLoop) {
  Program P = parseOrDie("i = 1;\n"
                         "while (i <= 10) {\n"
                         "  A[i] = A[i] + 1;\n"
                         "  i = i + 1;\n"
                         "}\n");
  LoopNestTree T(P);
  ASSERT_EQ(T.size(), 1u);
  const NestLoop &N = *T.roots()[0];
  ASSERT_TRUE(N.isSupported());
  EXPECT_TRUE(N.isWhile());
  EXPECT_EQ(N.iv(), "i");
  EXPECT_EQ(N.tripCount(), 10);
  EXPECT_EQ(N.ConsumedInit, P.getStmts()[0].get());
  EXPECT_EQ(N.Analyzed, N.Reduced.get());

  // The reduced form is exactly the hand-normalized DO loop: the
  // trailing increment is consumed, the bounds come from init + guard.
  Program Expected = parseOrDie("do i = 1, 10 { A[i] = A[i] + 1; }");
  EXPECT_TRUE(N.Reduced->equals(*Expected.getFirstLoop()))
      << programToString(P);
}

TEST(LoopNestTest, StrictLessThanAdjustsTheUpperBound) {
  Program P = parseOrDie("i = 1; while (i < 10) { x = x + i; i = i + 1; }");
  LoopNestTree T(P);
  ASSERT_TRUE(T.roots()[0]->isSupported());
  EXPECT_EQ(T.roots()[0]->tripCount(), 9);
}

TEST(LoopNestTest, NonUnitWhileStepIsNormalized) {
  // i = 1, 3, ..., 9: five iterations after normalization.
  Program P = parseOrDie("i = 1; while (i <= 10) { A[i] = 0; i = i + 2; }");
  LoopNestTree T(P);
  ASSERT_TRUE(T.roots()[0]->isSupported());
  EXPECT_EQ(T.roots()[0]->tripCount(), 5);
  EXPECT_TRUE(T.roots()[0]->Reduced->isNormalized());
}

TEST(LoopNestTest, DowncountingWhileIsRecognized) {
  Program P = parseOrDie("i = 10; while (i >= 1) { A[i] = 0; i = i - 1; }");
  LoopNestTree T(P);
  ASSERT_TRUE(T.roots()[0]->isSupported());
  EXPECT_EQ(T.roots()[0]->tripCount(), 10);
}

//===----------------------------------------------------------------------===//
// Rejections: every reason has a concrete trigger
//===----------------------------------------------------------------------===//

namespace {

/// Builds the nest of \p Source and expects its only root to be
/// rejected with a reason containing \p ReasonPart.
void expectRejected(const std::string &Source,
                    const std::string &ReasonPart) {
  Program P = parseOrDie(Source);
  LoopNestTree T(P);
  ASSERT_GE(T.size(), 1u) << Source;
  const NestLoop &N = *T.roots()[0];
  EXPECT_FALSE(N.isSupported()) << Source;
  EXPECT_EQ(N.Reduced, nullptr);
  EXPECT_NE(N.UnsupportedReason.find(ReasonPart), std::string::npos)
      << "reason was: " << N.UnsupportedReason << "\nfor:\n" << Source;
}

} // namespace

TEST(LoopNestRejectTest, BreakMeansEarlyExit) {
  expectRejected("do i = 1, 10 { if (A[i] > 0) { break; } A[i] = 1; }",
                 "early exit");
  expectRejected(
      "i = 1; while (i <= 9) { if (A[i] > 0) { break; } i = i + 1; }",
      "early exit");
  // An unconditional break severs the path to the latch entirely: the
  // back edge is unreachable, so no natural loop (and no nest node)
  // exists in the first place.
  Program P =
      parseOrDie("i = 1; while (i <= 9) { break; i = i + 1; }");
  LoopNestTree T(P);
  EXPECT_EQ(T.size(), 0u);
}

TEST(LoopNestRejectTest, UncountedWhileCondition) {
  expectRejected("i = 1; while (A[i] > 0) { i = i + 1; }",
                 "not a counted form");
  expectRejected("i = 1; while (i + 1 < 10) { i = i + 1; }",
                 "not a counted form");
}

TEST(LoopNestRejectTest, MissingInit) {
  expectRejected("x = 1; while (i <= 10) { A[i] = 0; i = i + 1; }",
                 "no initialization");
}

TEST(LoopNestRejectTest, MissingTrailingIncrement) {
  expectRejected("i = 1; while (i <= 10) { A[i] = 0; }", "no trailing");
  // An increment that is not last does not count as the trailing one.
  expectRejected("i = 1; while (i <= 10) { i = i + 1; A[i] = 0; }",
                 "no trailing");
}

TEST(LoopNestRejectTest, IncrementContradictsGuard) {
  expectRejected("i = 1; while (i <= 10) { A[i] = 0; i = i - 1; }",
                 "contradicts");
}

TEST(LoopNestRejectTest, InductionVariableRewritten) {
  expectRejected(
      "i = 1; while (i <= 10) { i = i * 2; A[i] = 0; i = i + 1; }",
      "assigned more than once");
  expectRejected("do i = 1, 10 { i = i + 2; A[i] = 0; }", "assigned");
}

TEST(LoopNestRejectTest, BoundMentionsOrMutatesItself) {
  expectRejected("n = 5; i = 1; while (i < n) { n = n + 1; i = i + 1; }",
                 "modified inside");
}

TEST(LoopNestRejectTest, EmptyBody) {
  expectRejected("i = 1; while (i <= 10) { i = i + 1; }", "empty loop body");
}

TEST(LoopNestRejectTest, ZeroStepDoLoop) {
  Program P;
  StmtList Body;
  Body.push_back(assign(array("A", var("i")), lit(0)));
  P.addStmt(std::make_unique<DoLoopStmt>("i", lit(1), lit(10),
                                         std::move(Body), 0));
  LoopNestTree T(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_FALSE(T.roots()[0]->isSupported());
}

TEST(LoopNestRejectTest, UnsupportedChildPoisonsAncestors) {
  Program P = parseOrDie("do i = 1, 10 {\n"
                         "  do j = 1, 10 {\n"
                         "    if (A[j] > 0) { break; }\n"
                         "    A[j] = 1;\n"
                         "  }\n"
                         "}\n");
  LoopNestTree T(P);
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T.supportedCount(), 0u);
  const NestLoop &Outer = *T.roots()[0];
  EXPECT_NE(Outer.UnsupportedReason.find("unsupported inner loop"),
            std::string::npos)
      << Outer.UnsupportedReason;
}

TEST(LoopNestTest, SupportedChildUnderUnsupportedParentIsAnalyzedAlone) {
  Program P = parseOrDie("do i = 1, 10 {\n"
                         "  do j = 1, 10 { A[j+1] = A[j]; }\n"
                         "  if (x > 0) { break; }\n"
                         "}\n");
  LoopNestTree T(P);
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T.supportedCount(), 1u);
  const NestLoop *J = nodeWithIv(T, "j");
  ASSERT_NE(J, nullptr);
  ASSERT_FALSE(J->Parent->isSupported());
  // The inner loop becomes its own analysis root...
  EXPECT_EQ(J->Analyzed, J->Reduced.get());
  // ...and its path marks the unanalyzable level.
  EXPECT_EQ(J->path(), "?/j");
}

//===----------------------------------------------------------------------===//
// Reduced forms are analyzable and engine-identical
//===----------------------------------------------------------------------===//

TEST(LoopNestTest, ReducedFormsSolveBitIdenticallyOnAllEngines) {
  Program P = parseOrDie("i = 1;\n"
                         "while (i <= 20) {\n"
                         "  do j = 1, 20 {\n"
                         "    A[j + 2] = A[j] * 2;\n"
                         "    T[j] = A[j + 1];\n"
                         "  }\n"
                         "  i = i + 1;\n"
                         "}\n"
                         "do m = 3, 19, 2 { T[m] = T[m - 2] + 1; }\n");
  LoopNestTree T(P);
  EXPECT_EQ(T.supportedCount(), 3u);

  const SolverOptions::Engine Engines[] = {
      SolverOptions::Engine::Reference, SolverOptions::Engine::PackedKernel,
      SolverOptions::Engine::PackedSimd, SolverOptions::Engine::Summary};
  T.forEach([&](const NestLoop &N) {
    if (!N.isSupported())
      return;
    for (const ProblemSpec &Spec : paperProblems()) {
      SolverOptions Ref;
      Ref.Eng = SolverOptions::Engine::Reference;
      LoopAnalysisSession Baseline(P, *N.Analyzed);
      const SolveResult &Want = Baseline.solve(Spec, Ref);
      ASSERT_EQ(Want.Outcome, SolveOutcome::Ok);
      for (SolverOptions::Engine Eng : Engines) {
        SolverOptions Opts;
        Opts.Eng = Eng;
        LoopAnalysisSession Session(P, *N.Analyzed);
        const SolveResult &Got = Session.solve(Spec, Opts);
        EXPECT_EQ(Got.In, Want.In)
            << N.path() << " / " << Spec.Name << " / engine "
            << engineName(Eng);
        EXPECT_EQ(Got.Out, Want.Out)
            << N.path() << " / " << Spec.Name << " / engine "
            << engineName(Eng);
      }
    }
  });
}

TEST(LoopNestTest, PerLevelSessionsSeeOuterDistances) {
  // Classic 2-D stencil: the inner loop re-reads the previous j value
  // (distance 1 at the inner level) and the previous i row (distance 1
  // at the outer level).
  Program P = parseOrDie("array X[64, 64];\n"
                         "do i = 1, 32 {\n"
                         "  do j = 1, 32 {\n"
                         "    X[i, j] = X[i, j - 1] + X[i - 1, j];\n"
                         "  }\n"
                         "}\n");
  LoopNestTree T(P);
  const NestLoop *J = nodeWithIv(T, "j");
  ASSERT_NE(J, nullptr);
  ASSERT_EQ(J->Depth, 1u);
  const NestLoop *I = J->Parent;
  ASSERT_TRUE(I && I->isSupported());

  // Inner level: X[i, j-1] is available at distance 1.
  LoopAnalysisSession Inner(P, *J->Analyzed);
  std::vector<ReusePair> InnerPairs = Inner.reusePairs(
      ProblemSpec::availableValuesPerOccurrence(), RefSelector::Uses);
  bool InnerDist1 = false;
  for (const ReusePair &Pr : InnerPairs)
    InnerDist1 |= Pr.Distance == 1;
  EXPECT_TRUE(InnerDist1);

  // Outer level (with respect to i): X[i-1, j] reaches from the
  // previous outer iteration at distance 1.
  LoopAnalysisSession Outer(P, *J->Analyzed, I->iv(), I->tripCount());
  std::vector<ReusePair> OuterPairs = Outer.reusePairs(
      ProblemSpec::availableValuesPerOccurrence(), RefSelector::Uses);
  bool OuterDist1 = false;
  for (const ReusePair &Pr : OuterPairs)
    OuterDist1 |= Pr.Distance == 1;
  EXPECT_TRUE(OuterDist1);
}

TEST(LoopNestTest, NestedBodiesEmbedReducedChildren) {
  // The analyzed form of a depth-1 loop is the copy embedded in its
  // root's Reduced tree, not the standalone Reduced.
  Program P = parseOrDie("do i = 1, 4 { do j = 1, 4 { A[j] = j; } }");
  LoopNestTree T(P);
  const NestLoop *I = nodeWithIv(T, "i"), *J = nodeWithIv(T, "j");
  ASSERT_TRUE(I && J);
  EXPECT_EQ(I->Analyzed, I->Reduced.get());
  EXPECT_NE(J->Analyzed, J->Reduced.get());
  EXPECT_TRUE(J->Analyzed->equals(*J->Reduced));
  // The embedded copy lives inside the root's reduced body.
  bool Embedded = false;
  forEachStmt(*I->Reduced, [&](const Stmt &S) {
    Embedded |= &S == static_cast<const Stmt *>(J->Analyzed);
  });
  EXPECT_TRUE(Embedded);
}
