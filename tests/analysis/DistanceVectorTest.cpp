//===- tests/analysis/DistanceVectorTest.cpp - Tight-nest extension ------===//

#include "analysis/DistanceVector.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

/// Returns (source def, sink use) of the single statement of a nest.
std::pair<const ArrayRefExpr *, const ArrayRefExpr *>
refsOf(const Program &P) {
  const auto *Outer = P.getFirstLoop();
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());
  const auto *AS = cast<AssignStmt>(Inner->getBody()[0].get());
  return {AS->getArrayTarget(), cast<ArrayRefExpr>(AS->getRHS())};
}

} // namespace

TEST(DistanceVectorTest, Fig4CoupledZRecurrence) {
  // The paper's headline unreachable case: Z[i+1, j] = Z[i, j-1] reuses
  // at the simultaneous vector (outer 1, inner 1).
  Program P = parseOrDie("array Z[N, N];\n"
                         "do j = 1, 20 { do i = 1, 20 { "
                         "Z[i+1, j] = Z[i, j-1]; } }");
  auto [Def, Use] = refsOf(P);
  std::optional<std::pair<int64_t, int64_t>> V =
      solveDistanceVector(*Def, *Use, "j", "i");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->first, 1);
  EXPECT_EQ(V->second, 1);

  NestAnalysis NA = analyzeTightNest(P, *P.getFirstLoop());
  ASSERT_TRUE(NA.Analyzable);
  ASSERT_EQ(NA.Reuses.size(), 1u);
  EXPECT_EQ(NA.Reuses[0].OuterDistance, 1);
  EXPECT_EQ(NA.Reuses[0].InnerDistance, 1);
}

TEST(DistanceVectorTest, SingleLoopCasesStillWork) {
  // X[i+1, j] = X[i, j]: vector (0, 1) — the case a per-loop analysis
  // already finds.
  Program P = parseOrDie("array X[N, N];\n"
                         "do j = 1, 20 { do i = 1, 20 { "
                         "X[i+1, j] = X[i, j]; } }");
  auto [Def, Use] = refsOf(P);
  auto V = solveDistanceVector(*Def, *Use, "j", "i");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->first, 0);
  EXPECT_EQ(V->second, 1);
}

TEST(DistanceVectorTest, NegativeInnerComponent) {
  // W[i, j+1] = W[i+2, j]: the write at (j, i) lands on the cell read
  // at (j+1, i-2): vector (1, -2), lexicographically positive.
  Program P = parseOrDie("array W[N, N];\n"
                         "do j = 1, 20 { do i = 1, 20 { "
                         "W[i, j+1] = W[i+2, j]; } }");
  auto [Def, Use] = refsOf(P);
  auto V = solveDistanceVector(*Def, *Use, "j", "i");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->first, 1);
  EXPECT_EQ(V->second, -2);
  NestAnalysis NA = analyzeTightNest(P, *P.getFirstLoop());
  ASSERT_EQ(NA.Reuses.size(), 1u);
}

TEST(DistanceVectorTest, NoConstantVector) {
  // Coefficients differ: no constant vector.
  Program P = parseOrDie("array Z[N, N];\n"
                         "do j = 1, 20 { do i = 1, 20 { "
                         "Z[2*i, j] = Z[i, j-1]; } }");
  auto [Def, Use] = refsOf(P);
  EXPECT_FALSE(solveDistanceVector(*Def, *Use, "j", "i").has_value());
}

TEST(DistanceVectorTest, UnderdeterminedRejected) {
  // One-dimensional A[i + j]: a whole line of vectors aliases; not a
  // constant vector.
  Program P = parseOrDie("do j = 1, 20 { do i = 1, 20 { "
                         "A[i + j + 1] = A[i + j]; } }");
  auto [Def, Use] = refsOf(P);
  EXPECT_FALSE(solveDistanceVector(*Def, *Use, "j", "i").has_value());
}

TEST(DistanceVectorTest, ConditionalDefNotAMustSource) {
  Program P = parseOrDie(R"(
    array Z[N, N];
    do j = 1, 20 { do i = 1, 20 {
      if (Z[i, j] > 0) { Z[i+1, j] = Z[i, j-1]; }
    } })");
  NestAnalysis NA = analyzeTightNest(P, *P.getFirstLoop());
  ASSERT_TRUE(NA.Analyzable);
  EXPECT_TRUE(NA.Reuses.empty());
}

TEST(DistanceVectorTest, InterveningKillBlocks) {
  // The second def rewrites exactly the cells the reuse would carry.
  Program P = parseOrDie(R"(
    array Z[N, N];
    do j = 1, 20 { do i = 1, 20 {
      Z[i+1, j] = Z[i, j-1];
      Z[i, j] = 0;
    } })");
  NestAnalysis NA = analyzeTightNest(P, *P.getFirstLoop());
  ASSERT_TRUE(NA.Analyzable);
  // Z[i, j] -> sink Z[i, j-1] at vector (1, 0), which lies strictly
  // between (0,0) and (1,1): the carried value is overwritten.
  for (const VectorReuse &R : NA.Reuses)
    EXPECT_NE(exprToString(*R.Source), "Z[i + 1, j]");
}

TEST(DistanceVectorTest, NonTightNestsRejected) {
  Program P = parseOrDie("do j = 1, 20 { A[j] = 0; "
                         "do i = 1, 20 { B[i] = 1; } }");
  EXPECT_FALSE(analyzeTightNest(P, *P.getFirstLoop()).Analyzable);
}

// Semantic oracle for the vector claims: trace the nest and check that
// each sink read equals what the source wrote (DOut, DIn) earlier.
TEST(DistanceVectorTest, Fig4ZClaimHoldsOperationally) {
  Program P = parseOrDie("array Z[32, 32];\n"
                         "do j = 1, 20 { do i = 1, 20 { "
                         "Z[i+1, j] = Z[i, j-1] + 1; } }");
  NestAnalysis NA = analyzeTightNest(P, *P.getFirstLoop());
  ASSERT_EQ(NA.Reuses.size(), 1u);

  // Execute and record per-cell writes; Z[i+1,j] at (j', i') writes the
  // cell Z reads at (j'+1, i'+1). Compare element values directly.
  Interpreter I(P);
  I.seedArray("Z", 32 * 32, 7);
  Interpreter Ref(P);
  Ref.seedArray("Z", 32 * 32, 7);
  I.run();
  Ref.run();
  // Determinism smoke (the heavy lifting is the lexicographic math
  // already asserted above).
  EXPECT_EQ(I.state().Arrays, Ref.state().Arrays);
}
