//===- tests/telemetry/TelemetryTest.cpp - Telemetry subsystem tests -----===//
//
// Core telemetry contracts: counter accounting and merging, scope
// installation and nesting, span inertness without a sink vs. recording
// with one, and the exporters (Chrome trace-event JSON shape, stats
// JSON/table content). End-to-end counter values of real solves are
// covered here too, with the cost-bound corpus in
// tests/dataflow/CostBoundTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Export.h"
#include "telemetry/Telemetry.h"

#include "analysis/LoopAnalysisSession.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>

using namespace ardf;
using namespace ardf::telem;

namespace {

/// Events are only recorded through the current() context, so a helper
/// that installs one around a callback keeps the tests tidy.
template <typename Fn> void withTelemetry(Telemetry &T, Fn &&F) {
  TelemetryScope Scope(T);
  F();
}

} // namespace

TEST(TelemetryTest, CountersStartAtZeroAndAdd) {
  Telemetry T;
  for (unsigned I = 0; I != NumCounters; ++I)
    EXPECT_EQ(T.get(static_cast<Counter>(I)), 0u);
  T.add(Counter::SolverNodeVisits);
  T.add(Counter::SolverNodeVisits, 41);
  EXPECT_EQ(T.get(Counter::SolverNodeVisits), 42u);
  EXPECT_EQ(T.get(Counter::SolverPasses), 0u);
}

TEST(TelemetryTest, CounterNamesAreDottedAndUnique) {
  std::set<std::string> Names;
  for (unsigned I = 0; I != NumCounters; ++I) {
    std::string Name = counterName(static_cast<Counter>(I));
    EXPECT_NE(Name.find('.'), std::string::npos) << Name;
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate: " << Name;
  }
}

TEST(TelemetryTest, CurrentIsNullUntilScopeInstallsAndNests) {
  EXPECT_EQ(Telemetry::current(), nullptr);
  Telemetry Outer, Inner;
  {
    TelemetryScope S1(Outer);
    EXPECT_EQ(Telemetry::current(), &Outer);
    {
      TelemetryScope S2(Inner);
      EXPECT_EQ(Telemetry::current(), &Inner);
    }
    EXPECT_EQ(Telemetry::current(), &Outer);
  }
  EXPECT_EQ(Telemetry::current(), nullptr);
}

TEST(TelemetryTest, CurrentIsPerThread) {
  Telemetry T;
  TelemetryScope Scope(T);
  Telemetry *Seen = &T;
  std::thread([&Seen] { Seen = Telemetry::current(); }).join();
  EXPECT_EQ(Seen, nullptr);
  EXPECT_EQ(Telemetry::current(), &T);
}

TEST(TelemetryTest, CountHelperIsANoOpWithoutContext) {
  ASSERT_EQ(Telemetry::current(), nullptr);
  count(Counter::LintChecks, 7); // must not crash, nothing to record into
  Telemetry T;
  withTelemetry(T, [] { count(Counter::LintChecks, 7); });
  EXPECT_EQ(T.get(Counter::LintChecks), 7u);
}

TEST(TelemetryTest, SpanInertWithoutSink) {
  Telemetry T;
  withTelemetry(T, [] {
    Span S("solve", "solver");
    EXPECT_FALSE(S.active());
    S.arg("nodes", 5); // dropped, not crashed
  });
  // No sink: nothing recorded anywhere, counters untouched.
  for (unsigned I = 0; I != NumCounters; ++I)
    EXPECT_EQ(T.get(static_cast<Counter>(I)), 0u);
}

TEST(TelemetryTest, SpanRecordsThroughSinkWithArgsAndDetail) {
  Telemetry T;
  MemoryTraceSink Sink;
  T.setSink(&Sink);
  T.setThreadId(3);
  withTelemetry(T, [] {
    Span S("solve", "solver", "available-values");
    EXPECT_TRUE(S.active());
    S.arg("nodes", 6);
    S.arg("passes", 2);
  });
  ASSERT_EQ(Sink.events().size(), 1u);
  const TraceEvent &E = Sink.events()[0];
  EXPECT_EQ(E.Name, "solve:available-values");
  EXPECT_STREQ(E.Cat, "solver");
  EXPECT_EQ(E.Tid, 3u);
  ASSERT_EQ(E.NumArgs, 2u);
  EXPECT_STREQ(E.ArgKeys[0], "nodes");
  EXPECT_EQ(E.ArgVals[0], 6u);
  EXPECT_STREQ(E.ArgKeys[1], "passes");
  EXPECT_EQ(E.ArgVals[1], 2u);
}

TEST(TelemetryTest, SpanArgsBeyondMaxAreDropped) {
  Telemetry T;
  MemoryTraceSink Sink;
  T.setSink(&Sink);
  withTelemetry(T, [] {
    Span S("x", "y");
    for (uint64_t I = 0; I != TraceEvent::MaxArgs + 3; ++I)
      S.arg("k", I);
  });
  ASSERT_EQ(Sink.events().size(), 1u);
  EXPECT_EQ(Sink.events()[0].NumArgs, TraceEvent::MaxArgs);
}

TEST(TelemetryTest, NestedSpansRecordInnermostFirst) {
  Telemetry T;
  MemoryTraceSink Sink;
  T.setSink(&Sink);
  withTelemetry(T, [] {
    Span Outer("outer", "t");
    { Span Inner("inner", "t"); }
  });
  ASSERT_EQ(Sink.events().size(), 2u);
  EXPECT_EQ(Sink.events()[0].Name, "inner");
  EXPECT_EQ(Sink.events()[1].Name, "outer");
  // Containment: outer started no later and ended no earlier.
  const TraceEvent &In = Sink.events()[0], &Out = Sink.events()[1];
  EXPECT_LE(Out.StartNs, In.StartNs);
  EXPECT_GE(Out.StartNs + Out.DurNs, In.StartNs + In.DurNs);
}

TEST(TelemetryTest, MergeCountersAddsEverySlot) {
  Telemetry A, B;
  A.add(Counter::DriverLoops, 2);
  B.add(Counter::DriverLoops, 5);
  B.add(Counter::SolverPasses, 1);
  A.mergeCountersFrom(B);
  EXPECT_EQ(A.get(Counter::DriverLoops), 7u);
  EXPECT_EQ(A.get(Counter::SolverPasses), 1u);
  EXPECT_EQ(B.get(Counter::DriverLoops), 5u); // source untouched
}

TEST(TelemetryTest, RecordStampsThreadIdAndDropsWithoutSink) {
  Telemetry T;
  TraceEvent E;
  E.Name = "x";
  T.record(E); // no sink: silently dropped
  MemoryTraceSink Sink;
  T.setSink(&Sink);
  T.setThreadId(9);
  E.Tid = 1234; // overwritten by the owner on record
  T.record(E);
  ASSERT_EQ(Sink.events().size(), 1u);
  EXPECT_EQ(Sink.events()[0].Tid, 9u);
}

TEST(TelemetryTest, ChromeTraceShapeAndEscaping) {
  TraceEvent E;
  E.Name = "weird \"name\"\n";
  E.Cat = "solver";
  E.StartNs = 2500;
  E.DurNs = 1500;
  E.Tid = 2;
  E.ArgKeys[0] = "nodes";
  E.ArgVals[0] = 6;
  E.NumArgs = 1;
  TraceEvent E2;
  E2.Name = "later";
  E2.Cat = "t";
  E2.StartNs = 4000;
  E2.DurNs = 100;

  std::ostringstream OS;
  writeChromeTrace(OS, {E, E2});
  std::string S = OS.str();
  // Metadata lane name + complete events with rebased microsecond ts.
  EXPECT_NE(S.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(S.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(S.find("\"name\":\"weird \\\"name\\\"\\n\""),
            std::string::npos);
  EXPECT_NE(S.find("\"ts\":0.000,\"dur\":1.500"), std::string::npos);
  EXPECT_NE(S.find("\"ts\":1.500,\"dur\":0.100"), std::string::npos);
  EXPECT_NE(S.find("\"pid\":1,\"tid\":2"), std::string::npos);
  EXPECT_NE(S.find("\"args\":{\"nodes\":6}"), std::string::npos);
}

TEST(TelemetryTest, ChromeTraceEmptyIsStillValid) {
  std::ostringstream OS;
  writeChromeTrace(OS, {});
  EXPECT_NE(OS.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(OS.str().find("process_name"), std::string::npos);
}

TEST(TelemetryTest, StatsJsonListsEveryCounterAndDerived) {
  Telemetry T;
  T.add(Counter::SessionSolutionHits, 3);
  T.add(Counter::SessionSolutionMisses, 1);
  T.add(Counter::MustNodeVisits, 18);
  T.add(Counter::MustVisitBound, 18);
  std::ostringstream OS;
  writeStatsJson(OS, T);
  std::string S = OS.str();
  for (unsigned I = 0; I != NumCounters; ++I)
    EXPECT_NE(S.find(std::string("\"") +
                     counterName(static_cast<Counter>(I)) + "\""),
              std::string::npos)
        << counterName(static_cast<Counter>(I));
  EXPECT_NE(S.find("\"session.solution.hits\": 3"), std::string::npos);
  EXPECT_NE(S.find("\"session.solution.hit_rate\": 0.7500"),
            std::string::npos);
  EXPECT_NE(S.find("\"solver.must.bound_met\": true"), std::string::npos);
  EXPECT_NE(S.find("\"solver.may.bound_met\": true"), std::string::npos);
}

TEST(TelemetryTest, StatsJsonFlagsMissedBound) {
  Telemetry T;
  T.add(Counter::MustNodeVisits, 20);
  T.add(Counter::MustVisitBound, 18);
  std::ostringstream OS;
  writeStatsJson(OS, T);
  EXPECT_NE(OS.str().find("\"solver.must.bound_met\": false"),
            std::string::npos);
}

TEST(TelemetryTest, StatsTableShowsCountersAndBoundVerdict) {
  Telemetry T;
  T.add(Counter::SolverNodeVisits, 132);
  std::ostringstream OS;
  writeStatsTable(OS, T);
  std::string S = OS.str();
  EXPECT_NE(S.find("solver.node_visits"), std::string::npos);
  EXPECT_NE(S.find("132"), std::string::npos);
  EXPECT_NE(S.find("met"), std::string::npos);
}

TEST(TelemetryTest, SolveRecordsCountersAndBoundedVisits) {
  // The if/else join gives the graph a true meet point, so the meet-op
  // counter is exercised too (straight-line loops need no real meets).
  Program P = parseOrDie("do i = 1, 100 { A[i] = B[i] + B[i-1]; "
                         "if (A[i-2] > 0) { B[i+2] = A[i-1]; } "
                         "C[i] = A[i] + B[i-2]; }");
  Telemetry T;
  MemoryTraceSink Sink;
  T.setSink(&Sink);
  withTelemetry(T, [&P] {
    LoopAnalysisSession S(P, *P.getFirstLoop());
    S.solve(ProblemSpec::availableValues());   // must: 3N
    S.solve(ProblemSpec::reachingReferences());// may: 2N
  });
  unsigned N = 0;
  {
    LoopFlowGraph G(*P.getFirstLoop());
    N = G.getNumNodes();
  }
  EXPECT_EQ(T.get(Counter::SolverRunsReference), 2u);
  EXPECT_EQ(T.get(Counter::MustNodeVisits), 3u * N);
  EXPECT_EQ(T.get(Counter::MustVisitBound), 3u * N);
  EXPECT_EQ(T.get(Counter::MayNodeVisits), 2u * N);
  EXPECT_EQ(T.get(Counter::MayVisitBound), 2u * N);
  EXPECT_EQ(T.get(Counter::SolverNodeVisits), 5u * N);
  EXPECT_GT(T.get(Counter::SolverMeetOps), 0u);
  EXPECT_GT(T.get(Counter::SolverApplyOps), 0u);
  // Two solve spans reached the sink (plus session-internal ones are
  // none: sessions only add counters).
  unsigned SolveSpans = 0;
  for (const TraceEvent &E : Sink.events())
    SolveSpans += E.Name.rfind("solve:", 0) == 0;
  EXPECT_EQ(SolveSpans, 2u);
}

TEST(TelemetryTest, WallClockIsMonotonic) {
  uint64_t A = wallNowNs();
  uint64_t B = wallNowNs();
  EXPECT_GE(B, A);
  EXPECT_GT(cpuNowNs() + 1, 0u); // callable; value is platform-defined
}
