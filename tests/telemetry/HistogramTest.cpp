//===- tests/telemetry/HistogramTest.cpp - Latency histogram tests -------===//
//
// The log2-bucketed latency histograms and their exporters: bucket
// edges, quantile estimates, merging, the timings gate (clock reads are
// a separate opt-in from counters, so counters-only telemetry stays
// clock-free), the stats JSON/table histogram sections, and the
// Prometheus text exposition diffed against a committed golden scrape.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Export.h"
#include "telemetry/Telemetry.h"

#include "analysis/LoopAnalysisSession.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace ardf;
using namespace ardf::telem;

namespace {

/// A Telemetry populated with fixed counters and histogram samples, the
/// single source of the committed Prometheus golden.
void populateDeterministic(Telemetry &T) {
  T.add(Counter::SolverRunsReference, 3);
  T.add(Counter::SolverNodeVisits, 120);
  T.add(Counter::MustNodeVisits, 72);
  T.add(Counter::MustVisitBound, 72);
  T.add(Counter::MayNodeVisits, 48);
  T.add(Counter::MayVisitBound, 48);
  T.add(Counter::SolverMeetOps, 64);
  T.add(Counter::SolverApplyOps, 96);
  T.add(Counter::SessionSolutionHits, 3);
  T.add(Counter::SessionSolutionMisses, 1);
  const uint64_t SolveSamples[] = {0, 1, 2, 3, 700, 800, 1500, 1u << 20};
  for (uint64_t Ns : SolveSamples)
    T.recordLatency(Histo::SolveNs, Ns);
  const uint64_t CheckSamples[] = {100, 200};
  for (uint64_t Ns : CheckSamples)
    T.recordLatency(Histo::CheckNs, Ns);
  T.recordLatency(Histo::DriverLoopNs, 5000);
}

} // namespace

TEST(HistogramTest, BucketEdgesAreLogTwo) {
  EXPECT_EQ(histogramBucket(0), 0u);
  EXPECT_EQ(histogramBucket(1), 1u);
  EXPECT_EQ(histogramBucket(2), 2u);
  EXPECT_EQ(histogramBucket(3), 2u);
  EXPECT_EQ(histogramBucket(4), 3u);
  EXPECT_EQ(histogramBucket(1023), 10u);
  EXPECT_EQ(histogramBucket(1024), 11u);
  EXPECT_EQ(histogramBucket(~0ull), HistogramBuckets - 1); // clamped
  EXPECT_EQ(histogramBucketUpperNs(0), 0u);
  EXPECT_EQ(histogramBucketUpperNs(1), 1u);
  EXPECT_EQ(histogramBucketUpperNs(10), 1023u);
  EXPECT_EQ(histogramBucketUpperNs(64), ~0ull);
}

TEST(HistogramTest, RecordSnapshotAndQuantiles) {
  Histogram H;
  EXPECT_TRUE(H.snapshot().empty());
  // 10 samples: nine in the [512, 1023] bucket, one huge outlier.
  for (int I = 0; I != 9; ++I)
    H.record(700);
  H.record(1u << 30);
  HistogramSnapshot S = H.snapshot();
  EXPECT_FALSE(S.empty());
  EXPECT_EQ(S.Count, 10u);
  EXPECT_EQ(S.SumNs, 9u * 700u + (1u << 30));
  // p50/p90 land in the 700ns bucket (upper edge 1023), p99+ rounds up
  // to the outlier's bucket.
  EXPECT_EQ(S.quantileNs(0.50), 1023u);
  EXPECT_EQ(S.quantileNs(0.90), 1023u);
  EXPECT_EQ(S.quantileNs(0.99), (1u << 31) - 1);
  // Degenerate quantiles clamp instead of reading out of range.
  EXPECT_EQ(S.quantileNs(-1.0), 1023u);
  EXPECT_EQ(S.quantileNs(2.0), (1u << 31) - 1);
}

TEST(HistogramTest, MergeAddsBucketsAndSums) {
  Histogram A, B;
  A.record(100);
  B.record(100);
  B.record(5000);
  A.mergeFrom(B);
  HistogramSnapshot S = A.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.SumNs, 5200u);
  EXPECT_EQ(S.Buckets[histogramBucket(100)], 2u);
  EXPECT_EQ(S.Buckets[histogramBucket(5000)], 1u);
}

TEST(HistogramTest, MergeCountersFromCarriesHistograms) {
  Telemetry Root, Worker;
  Worker.recordLatency(Histo::SolveNs, 900);
  Worker.recordLatency(Histo::SolveNs, 1800);
  Root.recordLatency(Histo::SolveNs, 50);
  Root.mergeCountersFrom(Worker);
  EXPECT_EQ(Root.histogram(Histo::SolveNs).snapshot().Count, 3u);
  EXPECT_TRUE(Root.histogram(Histo::CheckNs).snapshot().empty());
}

TEST(HistogramTest, HistoNamesAreDottedAndUnique) {
  EXPECT_STREQ(histoName(Histo::SolveNs), "solver.solve_ns");
  EXPECT_STREQ(histoName(Histo::CheckNs), "lint.check_ns");
  EXPECT_STREQ(histoName(Histo::DriverLoopNs), "driver.loop_ns");
}

TEST(HistogramTest, LatencyTimerGatedOnTimingsNotOnContext) {
  // Counters-only telemetry must not read clocks: a LatencyTimer under
  // a context without enableTimings records nothing.
  Program P = parseOrDie("do i = 1, 100 { A[i+1] = A[i]; }");
  {
    Telemetry T;
    TelemetryScope Scope(T);
    LoopAnalysisSession S(P, *P.getFirstLoop());
    S.solve(ProblemSpec::availableValues());
    EXPECT_TRUE(T.histogram(Histo::SolveNs).snapshot().empty());
    EXPECT_GT(T.get(Counter::SolverRunsReference), 0u);
  }
  {
    Telemetry T;
    T.enableTimings();
    TelemetryScope Scope(T);
    LoopAnalysisSession S(P, *P.getFirstLoop());
    S.solve(ProblemSpec::availableValues());
    HistogramSnapshot Snap = T.histogram(Histo::SolveNs).snapshot();
    EXPECT_EQ(Snap.Count, 1u);
  }
}

TEST(HistogramTest, TimerIsNoOpWithoutContext) {
  { LatencyTimer LT(Histo::SolveNs); } // must not crash, records nowhere
  SUCCEED();
}

TEST(HistogramTest, StatsJsonEmitsHistogramSection) {
  Telemetry T;
  populateDeterministic(T);
  std::ostringstream OS;
  writeStatsJson(OS, T);
  std::string S = OS.str();
  EXPECT_NE(S.find("\"histograms\""), std::string::npos);
  EXPECT_NE(S.find("\"solver.solve_ns\""), std::string::npos);
  EXPECT_NE(S.find("\"lint.check_ns\""), std::string::npos);
  EXPECT_NE(S.find("\"driver.loop_ns\""), std::string::npos);
  EXPECT_NE(S.find("\"count\": 8"), std::string::npos);
  EXPECT_NE(S.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(S.find("\"p95_ns\""), std::string::npos);
  EXPECT_NE(S.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(S.find("\"buckets\""), std::string::npos);
}

TEST(HistogramTest, StatsTableShowsQuantileSummaries) {
  Telemetry T;
  populateDeterministic(T);
  std::ostringstream OS;
  writeStatsTable(OS, T);
  std::string S = OS.str();
  EXPECT_NE(S.find("solver.solve_ns"), std::string::npos);
  EXPECT_NE(S.find("n=8"), std::string::npos);
  EXPECT_NE(S.find("p50<="), std::string::npos);
  EXPECT_NE(S.find("p99<="), std::string::npos);
}

TEST(HistogramTest, PrometheusMatchesGoldenScrape) {
  Telemetry T;
  populateDeterministic(T);
  std::ostringstream OS;
  writePrometheus(OS, T);
  std::string Got = OS.str();

  std::string GoldenPath =
      std::string(ARDF_TELEMETRY_GOLDEN_DIR) + "/prometheus.expected";
  std::ifstream In(GoldenPath, std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden: " << GoldenPath;
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Got, Buf.str())
      << "Prometheus exposition drifted from the golden scrape; if the "
         "change is intentional, regenerate " << GoldenPath;
}

TEST(HistogramTest, PrometheusShapeContracts) {
  // Shape assertions that hold regardless of the golden's content:
  // every counter exported with a TYPE line, cumulative le-buckets, and
  // the mandatory +Inf/_sum/_count triple per histogram.
  Telemetry T;
  populateDeterministic(T);
  std::ostringstream OS;
  writePrometheus(OS, T);
  std::string S = OS.str();
  for (unsigned I = 0; I != NumCounters; ++I) {
    std::string Name = counterName(static_cast<Counter>(I));
    for (char &C : Name)
      if (C == '.')
        C = '_';
    EXPECT_NE(S.find("# TYPE ardf_" + Name + " counter"),
              std::string::npos)
        << Name;
  }
  EXPECT_NE(S.find("ardf_session_solution_hit_rate 0.7500"),
            std::string::npos);
  EXPECT_NE(S.find("ardf_solver_solve_ns_bucket{le=\"+Inf\"} 8"),
            std::string::npos);
  EXPECT_NE(S.find("ardf_solver_solve_ns_count 8"), std::string::npos);
  EXPECT_NE(S.find("ardf_solver_solve_ns_sum "), std::string::npos);
  // Cumulative: the +Inf bucket count equals _count, and bucket counts
  // never decrease.
  size_t Pos = 0;
  uint64_t Prev = 0;
  bool Seen = false;
  while ((Pos = S.find("ardf_solver_solve_ns_bucket{le=\"", Pos)) !=
         std::string::npos) {
    size_t ValPos = S.find("} ", Pos);
    ASSERT_NE(ValPos, std::string::npos);
    uint64_t Val = std::strtoull(S.c_str() + ValPos + 2, nullptr, 10);
    if (Seen) {
      EXPECT_GE(Val, Prev);
    }
    Prev = Val;
    Seen = true;
    ++Pos;
  }
  EXPECT_TRUE(Seen);
  EXPECT_EQ(Prev, 8u);
}
