//===- tests/scalardf/ScalarLivenessTest.cpp - Scalar liveness -----------===//

#include "frontend/Parser.h"
#include "scalardf/ScalarLiveness.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

struct Built {
  Program P;
  std::unique_ptr<LoopFlowGraph> G;
  std::unique_ptr<ScalarLiveness> L;
};

Built build(const char *Source) {
  Built B{parseOrDie(Source), nullptr, nullptr};
  B.G = std::make_unique<LoopFlowGraph>(*B.P.getFirstLoop());
  B.L = std::make_unique<ScalarLiveness>(*B.G);
  return B;
}

} // namespace

TEST(ScalarLivenessTest, CollectsVariables) {
  Built B = build("do i = 1, 10 { x = y + A[i]; }");
  int X = B.L->indexOf("x");
  int Y = B.L->indexOf("y");
  int I = B.L->indexOf("i");
  ASSERT_GE(X, 0);
  ASSERT_GE(Y, 0);
  ASSERT_GE(I, 0);
  EXPECT_EQ(B.L->indexOf("nope"), -1);
  EXPECT_TRUE(B.L->isDefinedInLoop(X));
  EXPECT_FALSE(B.L->isDefinedInLoop(Y));
  EXPECT_TRUE(B.L->isDefinedInLoop(I)); // the exit node increments i
}

TEST(ScalarLivenessTest, SymbolicInputLiveEverywhere) {
  Built B = build("do i = 1, 10 { A[i] = A[i] + x; B[i] = x; }");
  int X = B.L->indexOf("x");
  ASSERT_GE(X, 0);
  // x is used every iteration and never defined: live-in at every node.
  for (unsigned N = 0; N != B.G->getNumNodes(); ++N)
    EXPECT_TRUE(B.L->isLiveIn(N, X)) << "node " << N;
  EXPECT_EQ(B.L->accessCount(X), 2u);
}

TEST(ScalarLivenessTest, DeadAfterLastUse) {
  Built B = build("do i = 1, 10 { t = A[i]; B[i] = t; C[i] = 1; }");
  int T = B.L->indexOf("t");
  ASSERT_GE(T, 0);
  // t is dead on entry of the loop (redefined before any use) and dead
  // after its use in the second statement.
  unsigned First = B.G->reversePostorder()[0];
  unsigned Third = B.G->reversePostorder()[2];
  EXPECT_FALSE(B.L->isLiveIn(First, T));
  EXPECT_FALSE(B.L->isLiveIn(Third, T));
  // Live between the def and the use.
  unsigned Second = B.G->reversePostorder()[1];
  EXPECT_TRUE(B.L->isLiveIn(Second, T));
}

TEST(ScalarLivenessTest, LoopCarriedScalarLiveAcrossBackEdge) {
  Built B = build("do i = 1, 10 { s = s + A[i]; }");
  int S = B.L->indexOf("s");
  ASSERT_GE(S, 0);
  // s is used before being redefined: live around the whole cycle.
  for (unsigned N = 0; N != B.G->getNumNodes(); ++N)
    EXPECT_TRUE(B.L->isLiveIn(N, S));
  EXPECT_GT(B.L->liveNodeCount(S), 0u);
}

TEST(ScalarLivenessTest, BranchLocalUse) {
  Built B = build(R"(
    do i = 1, 10 {
      t = A[i];
      if (t > 0) { B[i] = t; }
      C[i] = 0;
    })");
  int T = B.L->indexOf("t");
  ASSERT_GE(T, 0);
  // Live at the guard and inside the branch; dead at C[i] = 0.
  for (unsigned N = 0; N != B.G->getNumNodes(); ++N) {
    const FlowNode &Node = B.G->getNode(N);
    if (Node.Kind == FlowNodeKind::Guard) {
      EXPECT_TRUE(B.L->isLiveIn(N, T));
    }
    if (Node.Kind == FlowNodeKind::Statement && Node.StmtNumber == 3) {
      EXPECT_FALSE(B.L->isLiveIn(N, T));
    }
  }
}

TEST(ScalarLivenessTest, InductionVariableLive) {
  Built B = build("do i = 1, 10 { A[i] = 0; }");
  int I = B.L->indexOf("i");
  ASSERT_GE(I, 0);
  for (unsigned N = 0; N != B.G->getNumNodes(); ++N)
    EXPECT_TRUE(B.L->isLiveIn(N, I));
}
