//===- tests/serve/ProtocolTest.cpp - Wire-protocol contract --------------===//
//
// parseRequest is the daemon's first line of defense: it must be total
// (malformed lines become bad-request text, never exceptions), validate
// every field it understands, recover the request id whenever possible
// so even rejections are correlatable, and clamp nothing -- budget
// clamping is the server's job, the protocol only parses.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <gtest/gtest.h>

using namespace ardf;
using namespace ardf::serve;

TEST(ProtocolTest, ParsesFullRequest) {
  ParsedRequest P = parseRequest(
      "{\"method\":\"analyze\",\"id\":7,\"tenant\":\"t1\","
      "\"file\":\"a.arf\",\"source\":\"do i = 1, 4 { A[i] = 0; }\","
      "\"engine\":\"packed\",\"cross_check\":false,\"nested\":false,"
      "\"budget\":{\"visits\":100,\"slack\":1.5,\"deadline_ms\":50,"
      "\"cells\":9}}");
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.R.M, Method::Analyze);
  EXPECT_EQ(P.R.Id.intValue(), 7);
  EXPECT_EQ(P.R.Tenant, "t1");
  EXPECT_EQ(P.R.File, "a.arf");
  EXPECT_EQ(P.R.Engine, SolverOptions::Engine::PackedKernel);
  EXPECT_FALSE(P.R.CrossCheck);
  EXPECT_FALSE(P.R.IncludeNested);
  EXPECT_EQ(P.R.Budget.MaxNodeVisits, 100u);
  EXPECT_EQ(P.R.Budget.DeadlineNs, 50u * 1000000u);
  EXPECT_EQ(P.R.Budget.MaxMatrixCells, 9u);
  EXPECT_DOUBLE_EQ(P.R.Budget.VisitSlack, 1.5);
}

TEST(ProtocolTest, DefaultsApply) {
  ParsedRequest P =
      parseRequest("{\"method\":\"lint\",\"source\":\"\"}");
  ASSERT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.R.Tenant, "default");
  EXPECT_EQ(P.R.File, "<request>");
  EXPECT_TRUE(P.R.CrossCheck);
  EXPECT_TRUE(P.R.IncludeNested);
  EXPECT_TRUE(P.R.Id.isNull());
  EXPECT_EQ(P.R.Engine, SolverOptions::Engine::Reference);
}

TEST(ProtocolTest, StatsAndShutdownNeedNoSource) {
  EXPECT_TRUE(parseRequest("{\"method\":\"stats\"}").Ok);
  EXPECT_TRUE(parseRequest("{\"method\":\"shutdown\"}").Ok);
  ParsedRequest P = parseRequest("{\"method\":\"lint\"}");
  EXPECT_FALSE(P.Ok);
  EXPECT_NE(P.Error.find("requires a 'source'"), std::string::npos)
      << P.Error;
}

TEST(ProtocolTest, MalformedJsonIsLocatedNotThrown) {
  ParsedRequest P = parseRequest("{\"method\": lint}");
  EXPECT_FALSE(P.Ok);
  EXPECT_NE(P.Error.find("malformed JSON at byte"), std::string::npos)
      << P.Error;
  EXPECT_FALSE(parseRequest("").Ok);
  EXPECT_FALSE(parseRequest("[1, 2]").Ok); // not an object
  EXPECT_FALSE(parseRequest(std::string(200, '[')).Ok); // depth bomb
}

TEST(ProtocolTest, IdIsRecoveredFromInvalidRequests) {
  // A rejected request still answers with its id when the line was at
  // least JSON -- fire-and-forget clients can match the error.
  ParsedRequest P =
      parseRequest("{\"id\":\"req-9\",\"method\":\"frobnicate\"}");
  EXPECT_FALSE(P.Ok);
  EXPECT_EQ(P.Id.stringValue(), "req-9");
  EXPECT_NE(P.Error.find("unknown method 'frobnicate'"), std::string::npos)
      << P.Error;
  EXPECT_NE(P.Error.find("analyze, lint, explain, stats, or shutdown"),
            std::string::npos)
      << P.Error;
}

TEST(ProtocolTest, FieldTypesAreValidated) {
  EXPECT_FALSE(parseRequest("{\"method\":42}").Ok);
  EXPECT_FALSE(
      parseRequest("{\"method\":\"lint\",\"source\":[1]}").Ok);
  EXPECT_FALSE(
      parseRequest(
          "{\"method\":\"lint\",\"source\":\"\",\"cross_check\":\"yes\"}")
          .Ok);
  EXPECT_FALSE(
      parseRequest(
          "{\"method\":\"lint\",\"source\":\"\",\"tenant\":\"\"}")
          .Ok);
  EXPECT_FALSE(
      parseRequest(
          "{\"method\":\"lint\",\"source\":\"\",\"budget\":7}")
          .Ok);
  EXPECT_FALSE(
      parseRequest("{\"method\":\"lint\",\"source\":\"\","
                   "\"budget\":{\"visits\":-5}}")
          .Ok);
  ParsedRequest P = parseRequest(
      "{\"method\":\"lint\",\"source\":\"\",\"engine\":\"smid\"}");
  EXPECT_FALSE(P.Ok);
  EXPECT_NE(P.Error.find("unknown engine 'smid'"), std::string::npos)
      << P.Error;
}

TEST(ProtocolTest, ResponseShapes) {
  std::string Ok = okResponse(json::Value(int64_t(3)),
                              json::Value(json::Object{}));
  EXPECT_EQ(Ok, "{\"id\":3,\"ok\":true,\"result\":{}}");
  EXPECT_EQ(Ok.find('\n'), std::string::npos);

  std::string Err = errorResponse(json::Value(), ErrorCode::Overloaded,
                                  "queue full");
  EXPECT_EQ(Err,
            "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"overloaded\","
            "\"message\":\"queue full\"}}");
  // Error messages with untrusted content stay one line.
  std::string Inj = errorResponse(json::Value(), ErrorCode::BadRequest,
                                  "line1\nline2\"quote");
  EXPECT_EQ(Inj.find('\n'), std::string::npos) << Inj;
}

TEST(ProtocolTest, NamesAreClosedSets) {
  EXPECT_STREQ(methodName(Method::Analyze), "analyze");
  EXPECT_STREQ(methodName(Method::Shutdown), "shutdown");
  EXPECT_STREQ(errorCodeName(ErrorCode::BadRequest), "bad-request");
  EXPECT_STREQ(errorCodeName(ErrorCode::PayloadTooLarge),
               "payload-too-large");
  EXPECT_STREQ(errorCodeName(ErrorCode::Overloaded), "overloaded");
  EXPECT_STREQ(errorCodeName(ErrorCode::Deadline), "deadline");
  EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
  EXPECT_STREQ(errorCodeName(ErrorCode::ShuttingDown), "shutting-down");
}
