//===- tests/serve/JsonTest.cpp - Bounded JSON layer ----------------------===//
//
// The daemon's JSON parser faces untrusted bytes: these tests pin the
// total-parsing contract (never throws, one located error), the
// nesting-depth bomb cap, integer exactness, and the NDJSON-safe
// writer (no raw newline ever escapes into the stream).
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <gtest/gtest.h>

using namespace ardf::json;

namespace {

Value parseOk(const std::string &Text) {
  ParseOutcome O = parse(Text);
  EXPECT_TRUE(O.Ok) << Text << " -> " << O.Error;
  return O.V;
}

} // namespace

TEST(JsonTest, ParsesEveryKind) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").boolValue());
  EXPECT_FALSE(parseOk("false").boolValue());
  EXPECT_EQ(parseOk("42").intValue(), 42);
  EXPECT_EQ(parseOk("-7").intValue(), -7);
  EXPECT_DOUBLE_EQ(parseOk("2.5").doubleValue(), 2.5);
  EXPECT_EQ(parseOk("\"hi\"").stringValue(), "hi");
  EXPECT_EQ(parseOk("[1, 2, 3]").array().size(), 3u);
  Value O = parseOk("{\"a\": 1, \"b\": [true]}");
  ASSERT_TRUE(O.isObject());
  ASSERT_NE(O.find("a"), nullptr);
  EXPECT_EQ(O.find("a")->intValue(), 1);
  EXPECT_EQ(O.find("missing"), nullptr);
}

TEST(JsonTest, IntegersRoundTripExactly) {
  // Budget ceilings and ids must survive untruncated; integral source
  // text stays Kind::Int up to the int64 edges.
  EXPECT_EQ(parseOk("9223372036854775807").intValue(),
            INT64_C(9223372036854775807));
  EXPECT_EQ(parseOk("-9223372036854775808").intValue(), INT64_MIN);
  EXPECT_TRUE(parseOk("1e3").isNumber());
  EXPECT_FALSE(parseOk("1e3").isInt()); // exponent form is a double
  EXPECT_FALSE(parseOk("1.0").isInt());
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(parseOk("\"a\\nb\\t\\\"c\\\\\"").stringValue(), "a\nb\t\"c\\");
  EXPECT_EQ(parseOk("\"\\u0041\"").stringValue(), "A");
}

TEST(JsonTest, MalformedInputsReportLocatedErrors) {
  const char *Bad[] = {"",       "{",          "[1,", "tru",
                       "\"abc",  "{\"a\" 1}",  "1 2", "{1: 2}",
                       "[1, 2,, 3]", "nul",    "\x01", "+5",
                       "{\"a\": }"};
  for (const char *Text : Bad) {
    ParseOutcome O = parse(Text);
    EXPECT_FALSE(O.Ok) << "accepted: " << Text;
    EXPECT_FALSE(O.Error.empty()) << Text;
  }
}

TEST(JsonTest, DepthBombIsRefusedAtTheCap) {
  // "[[[[..." must cost O(cap), not a stack overflow.
  std::string AtCap(DefaultMaxDepth, '[');
  std::string Closers(DefaultMaxDepth, ']');
  EXPECT_TRUE(parse(AtCap + Closers).Ok);
  std::string Bomb(DefaultMaxDepth + 8, '[');
  ParseOutcome O = parse(Bomb + std::string(DefaultMaxDepth + 8, ']'));
  EXPECT_FALSE(O.Ok);
  EXPECT_NE(O.Error.find("depth"), std::string::npos) << O.Error;
  // A custom (smaller) cap binds too.
  EXPECT_FALSE(parse("[[[[]]]]", 2).Ok);
  EXPECT_TRUE(parse("[[[[]]]]", 3).Ok);
}

TEST(JsonTest, WriterIsNdjsonSafe) {
  // One request per line means a raw newline inside a written value
  // would split a response in two. The writer must escape it.
  Object O;
  O["text"] = Value(std::string("line1\nline2\r\ttab"));
  std::string Out = Value(std::move(O)).toString();
  EXPECT_EQ(Out.find('\n'), std::string::npos) << Out;
  EXPECT_EQ(Out.find('\r'), std::string::npos) << Out;
  // And the escaped form parses back to the original bytes.
  Value Back = parseOk(Out);
  EXPECT_EQ(Back.find("text")->stringValue(), "line1\nline2\r\ttab");
}

TEST(JsonTest, WriteParseRoundTrip) {
  const char *Docs[] = {
      "{\"a\":[1,2.5,\"x\"],\"b\":{\"c\":null,\"d\":false}}",
      "[]",
      "{}",
      "[{\"nested\":[[-1]]}]",
  };
  for (const char *Doc : Docs) {
    std::string Rewritten = parseOk(Doc).toString();
    EXPECT_EQ(Rewritten, Doc);
  }
}

TEST(JsonTest, AppendQuotedEscapesControlBytes) {
  std::string Out;
  appendQuoted(Out, std::string("a\x01" "b\"c", 5));
  EXPECT_EQ(Out.front(), '"');
  EXPECT_EQ(Out.back(), '"');
  EXPECT_NE(Out.find("\\u0001"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\\\""), std::string::npos) << Out;
}
