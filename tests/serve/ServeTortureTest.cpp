//===- tests/serve/ServeTortureTest.cpp - Poisoned-tenant torture ---------===//
//
// The acceptance criterion of the robustness envelope, in one test: a
// sustained mixed stream of >= 6 poison classes -- parse bombs, budget
// breaches, armed serve.request throws, stalls past the deadline,
// oversized payloads, malformed JSON, depth-bombed JSON, and shed
// mid-request responses -- interleaved with well-formed good requests.
// Every good request must answer bit-identically to the single-shot
// lint pipeline, every poison line must get exactly one well-formed
// error (or contained-ok) response, and the process must never die.
// Poison tenants are distinct from the good tenant, so the good
// tenant's warm documents survive the storm.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "lint/LintEngine.h"
#include "lint/Render.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ardf;
using namespace ardf::serve;

namespace {

const char *GoodSource = "do i = 1, 10 {\n"
                         "  A[i] = B[i] + 1;\n"
                         "  C[i] = A[i];\n"
                         "}\n";

std::string jquote(const std::string &S) {
  std::string Out;
  json::appendQuoted(Out, S);
  return Out;
}

std::string call(AnalysisServer &S, const std::string &Line,
                 uint64_t TimeoutMs = 60000) {
  auto P = std::make_shared<std::promise<std::string>>();
  std::future<std::string> F = P->get_future();
  S.submit(Line, [P](std::string R) { P->set_value(std::move(R)); });
  EXPECT_EQ(F.wait_for(std::chrono::milliseconds(TimeoutMs)),
            std::future_status::ready)
      << "request never answered: " << Line.substr(0, 80);
  return F.get();
}

/// One poison line per class; the fire ordinals of the two armed
/// failpoints are chosen per round so the poison hits poison requests,
/// never the good ones (arming is per-site and the sites are evaluated
/// once per handled request).
std::vector<std::string> poisonLines(int Round) {
  std::vector<std::string> P;
  // Class 1: parser bomb (nesting far past the frontend's depth cap).
  std::string Bomb;
  for (int I = 0; I != 260; ++I)
    Bomb += "do i = 1, 10 {\n";
  P.push_back("{\"method\":\"lint\",\"tenant\":\"poison\",\"file\":\"bomb" +
              std::to_string(Round) + ".arf\",\"source\":" + jquote(Bomb) +
              "}");
  // Class 2: budget breach (starvation visit cap on a real program).
  P.push_back(
      "{\"method\":\"analyze\",\"tenant\":\"poison\",\"file\":\"starve.arf\","
      "\"source\":" +
      jquote(GoodSource) + ",\"budget\":{\"visits\":1}}");
  // Class 3: malformed JSON.
  P.push_back("{\"method\": lint, \"source\" \"oops\"");
  // Class 4: JSON depth bomb (caught by the bounded JSON parser).
  P.push_back(std::string(4000, '['));
  // Class 5: oversized payload (admission cap).
  P.push_back("{\"method\":\"lint\",\"source\":" +
              jquote(std::string(1 << 18, 'x')) + "}");
  // Class 6: invalid requests (unknown method, missing source, bad
  // field types).
  P.push_back("{\"method\":\"frobnicate\",\"id\":\"p6\"}");
  P.push_back("{\"method\":\"analyze\",\"tenant\":\"poison\"}");
  P.push_back("{\"method\":\"lint\",\"source\":[1,2]}");
  return P;
}

} // namespace

TEST(ServeTortureTest, PoisonedStreamNeverKillsGoodRequests) {
  ServeOptions Opts;
  Opts.Workers = 2;
  Opts.QueueDepth = 32;
  Opts.MaxRequestBytes = 1 << 16; // class 5 trips this
  Opts.RequestDeadlineMs = 5000;
  Opts.WatchdogGraceMs = 500;
  Opts.TenantQuota = 4;
  AnalysisServer S(Opts);

  // The expected good answer, computed once through the single-shot
  // pipeline with the server's effective budget (bit-identity target).
  LintOptions LO;
  LO.Budget.DeadlineNs = Opts.RequestDeadlineMs * 1000000ull;
  LintResult LR = lintSource(GoodSource, "good.arf", LO);
  std::ostringstream OS;
  renderJsonLines(OS, LR.Diags);
  const std::string WantRender = OS.str();

  int GoodAnswered = 0;
  std::string FirstGoodResponse;
  for (int Round = 0; Round != 4; ++Round) {
    // Classes 7 and 8 ride per-round RAII arming: a serve.request
    // throw and a serve.session breach, each aimed at the next poison
    // request handled (the good tenant's requests run afterwards, once
    // the scopes disarm).
    {
      failpoint::ScopedFailPoint Throw("serve.request",
                                       failpoint::Action::Throw, 1);
      std::string R = call(
          S, "{\"method\":\"lint\",\"tenant\":\"poison\",\"file\":\"fp.arf\","
             "\"source\":" +
                 jquote(GoodSource) + "}");
      EXPECT_NE(R.find("\"internal\""), std::string::npos) << R;
    }
    {
      failpoint::ScopedFailPoint Breach("serve.session",
                                        failpoint::Action::Breach, 1);
      std::string R = call(
          S,
          "{\"method\":\"lint\",\"tenant\":\"poison\",\"file\":\"new" +
              std::to_string(Round) + ".arf\",\"source\":" +
              jquote(GoodSource) + "}");
      EXPECT_NE(R.find("\"overloaded\""), std::string::npos) << R;
    }

    for (const std::string &Poison : poisonLines(Round)) {
      std::string R = call(S, Poison);
      // Every poison line gets exactly one well-formed JSON response;
      // parse bombs are contained as ok-with-error-diagnostics, the
      // rest are protocol errors.
      json::ParseOutcome O = json::parse(R);
      EXPECT_TRUE(O.Ok) << "unparsable response: " << R;

      // Interleave a good request after every poison line.
      std::string Good = call(
          S, "{\"method\":\"lint\",\"id\":" + std::to_string(GoodAnswered) +
                 ",\"tenant\":\"good\",\"file\":\"good.arf\",\"source\":" +
                 jquote(GoodSource) + "}");
      json::ParseOutcome GO = json::parse(Good);
      ASSERT_TRUE(GO.Ok) << Good;
      ASSERT_TRUE(GO.V.find("ok")->boolValue()) << Good;
      const json::Value *Render = GO.V.find("result")->find("render");
      ASSERT_NE(Render, nullptr) << Good;
      // Bit-identical to the fresh single-shot run, every time.
      EXPECT_EQ(Render->stringValue(), WantRender);
      ++GoodAnswered;
      if (FirstGoodResponse.empty())
        FirstGoodResponse = Render->stringValue();
    }
  }
  EXPECT_GE(GoodAnswered, 24);

  // A stall past deadline+grace (poison class 9): the watchdog fails
  // the wedged request; the daemon survives and still answers good
  // requests. Run it on a dedicated server with a short deadline so
  // the torture run above keeps its generous one.
  {
    failpoint::ScopedFailPoint Stall("serve.request",
                                     failpoint::Action::Stall, 1, 1200);
    ServeOptions WOpts;
    WOpts.RequestDeadlineMs = 100;
    WOpts.WatchdogGraceMs = 100;
    AnalysisServer W(WOpts);
    std::string R = call(W, "{\"method\":\"stats\",\"id\":\"wedge\"}", 5000);
    EXPECT_NE(R.find("\"deadline\""), std::string::npos) << R;
    std::string Good = call(
        W, "{\"method\":\"lint\",\"tenant\":\"good\",\"file\":\"g.arf\","
           "\"source\":" +
               jquote(GoodSource) + "}");
    EXPECT_NE(Good.find("\"ok\":true"), std::string::npos) << Good;
    // Let the abandoned worker's stall finish inside the failpoint
    // scope (W's destructor does not wait for detached threads).
    std::this_thread::sleep_for(std::chrono::milliseconds(1300));
  }

  // The storm is over: the server's tallies add up and the good
  // tenant's warm document survived the poison tenant's thrash.
  const telem::Telemetry &T = S.telemetry();
  uint64_t Requests = T.get(telem::Counter::ServeRequests);
  uint64_t Ok = T.get(telem::Counter::ServeOk);
  uint64_t Errors = T.get(telem::Counter::ServeErrors);
  uint64_t Overloads = T.get(telem::Counter::ServeOverloads);
  EXPECT_EQ(Requests, Ok + Errors + Overloads)
      << "every line answered exactly once";
  EXPECT_GE(Ok, static_cast<uint64_t>(GoodAnswered));
  EXPECT_GT(Errors, 0u);
}
