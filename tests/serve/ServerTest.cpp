//===- tests/serve/ServerTest.cpp - AnalysisServer contract ---------------===//
//
// In-process tests of the daemon's request engine: bit-identical lint
// renders against the single-shot pipeline, cold/warm analyze reruns,
// memoized response replay, admission control (payload cap, queue
// shedding), budget clamping, fault containment behind the
// serve.request failpoint, the watchdog's wedged-worker recovery, and
// shutdown draining. Every submit() must resolve to exactly one
// well-formed response line -- the helpers here block on that promise.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "lint/LintEngine.h"
#include "lint/Render.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <thread>

using namespace ardf;
using namespace ardf::serve;

namespace {

const char *GoodSource = "do i = 1, 10 {\n"
                         "  A[i] = B[i] + 1;\n"
                         "  C[i] = A[i];\n"
                         "}\n";

/// Submits one line and blocks until its (exactly-once) response.
std::string call(AnalysisServer &S, const std::string &Line,
                 uint64_t TimeoutMs = 30000) {
  auto P = std::make_shared<std::promise<std::string>>();
  std::future<std::string> F = P->get_future();
  S.submit(Line, [P](std::string R) { P->set_value(std::move(R)); });
  EXPECT_EQ(F.wait_for(std::chrono::milliseconds(TimeoutMs)),
            std::future_status::ready)
      << "no response within " << TimeoutMs << "ms for: " << Line;
  return F.get();
}

/// Parses a response line; fails the test if it is not valid JSON.
json::Value parsed(const std::string &Line) {
  json::ParseOutcome O = json::parse(Line);
  EXPECT_TRUE(O.Ok) << Line << " -> " << O.Error;
  return O.V;
}

bool isOk(const json::Value &Resp) {
  const json::Value *Ok = Resp.find("ok");
  return Ok && Ok->isBool() && Ok->boolValue();
}

std::string errorCode(const json::Value &Resp) {
  const json::Value *E = Resp.find("error");
  if (!E)
    return "";
  const json::Value *C = E->find("code");
  return C ? C->stringValue() : "";
}

/// JSON-encodes a source string into a lint request line.
std::string lintLine(const std::string &Source, const std::string &File,
                     int Id) {
  std::string Line = "{\"method\":\"lint\",\"id\":" + std::to_string(Id) +
                     ",\"file\":";
  json::appendQuoted(Line, File);
  Line += ",\"source\":";
  json::appendQuoted(Line, Source);
  Line += "}";
  return Line;
}

std::string analyzeLine(const std::string &Source, const std::string &File,
                        int Id, const std::string &Extra = "") {
  std::string Line = "{\"method\":\"analyze\",\"id\":" + std::to_string(Id) +
                     ",\"file\":";
  json::appendQuoted(Line, File);
  Line += ",\"source\":";
  json::appendQuoted(Line, Source);
  Line += Extra;
  Line += "}";
  return Line;
}

/// The single-shot reference pipeline the daemon's "render" member must
/// match byte for byte (same options the server derives for a default
/// request under \p ServerOpts).
std::string referenceRender(const std::string &Source,
                            const std::string &File,
                            const ServeOptions &ServerOpts) {
  LintOptions LO;
  LO.Budget = ServerOpts.Budget;
  if (ServerOpts.RequestDeadlineMs != 0 && LO.Budget.DeadlineNs == 0)
    LO.Budget.DeadlineNs = ServerOpts.RequestDeadlineMs * 1000000ull;
  LintResult LR = lintSource(Source, File, LO);
  std::ostringstream OS;
  renderJsonLines(OS, LR.Diags);
  return OS.str();
}

} // namespace

TEST(ServerTest, LintRenderIsBitIdenticalToSingleShot) {
  ServeOptions Opts;
  AnalysisServer S(Opts);
  json::Value Resp = parsed(call(S, lintLine(GoodSource, "t.arf", 1)));
  ASSERT_TRUE(isOk(Resp)) << Resp.toString();
  EXPECT_EQ(Resp.find("id")->intValue(), 1);
  const json::Value *Render = Resp.find("result")->find("render");
  ASSERT_NE(Render, nullptr);
  EXPECT_EQ(Render->stringValue(),
            referenceRender(GoodSource, "t.arf", Opts));
}

TEST(ServerTest, AnalyzeColdThenWarmRerun) {
  AnalysisServer S;
  json::Value Cold =
      parsed(call(S, analyzeLine(GoodSource, "doc.arf", 1)));
  ASSERT_TRUE(isOk(Cold)) << Cold.toString();
  const json::Value *R1 = Cold.find("result");
  EXPECT_FALSE(R1->find("warm")->boolValue());
  EXPECT_GE(R1->find("ok")->intValue(), 1);

  // Identical text: the response memo replays the first answer's exact
  // result bytes (so "warm" still reads false -- the replay IS the
  // cold response) and the cache-hit counter proves no re-analysis.
  json::Value Same =
      parsed(call(S, analyzeLine(GoodSource, "doc.arf", 2)));
  ASSERT_TRUE(isOk(Same)) << Same.toString();
  EXPECT_GE(S.telemetry().get(telem::Counter::ServeCacheHits), 1u);

  // A one-loop edit reruns through the structural diff.
  std::string Edited = std::string(GoodSource) +
                       "do j = 1, 8 {\n  D[j] = D[j];\n}\n";
  json::Value Warm =
      parsed(call(S, analyzeLine(Edited, "doc.arf", 3)));
  ASSERT_TRUE(isOk(Warm)) << Warm.toString();
  const json::Value *R3 = Warm.find("result");
  EXPECT_TRUE(R3->find("warm")->boolValue());
  EXPECT_GE(R3->find("reanalyzed")->intValue(), 1);
  EXPECT_GE(S.telemetry().get(telem::Counter::ServeReruns), 1u);
}

TEST(ServerTest, MemoizedResponseReplaysIdenticalBytes) {
  AnalysisServer S;
  std::string First = call(S, lintLine(GoodSource, "memo.arf", 9));
  std::string Second = call(S, lintLine(GoodSource, "memo.arf", 9));
  EXPECT_EQ(First, Second);
  EXPECT_GE(S.telemetry().get(telem::Counter::ServeCacheHits), 1u);
  // A different id replays the memoized result under the new id.
  json::Value Other = parsed(call(S, lintLine(GoodSource, "memo.arf", 10)));
  EXPECT_EQ(Other.find("id")->intValue(), 10);
  EXPECT_TRUE(isOk(Other));
}

TEST(ServerTest, RequestBudgetTightensButNeverLoosens) {
  // The server's ceiling is a starvation budget; a request asking for a
  // huge allowance must still degrade under the server's clamp.
  ServeOptions Opts;
  Opts.Budget.MaxNodeVisits = 1;
  AnalysisServer S(Opts);
  json::Value Resp = parsed(call(
      S, analyzeLine(GoodSource, "b.arf", 1,
                     ",\"budget\":{\"visits\":1000000000}")));
  ASSERT_TRUE(isOk(Resp)) << Resp.toString();
  EXPECT_GE(Resp.find("result")->find("degraded")->intValue(), 1)
      << Resp.toString();
}

TEST(ServerTest, OversizedPayloadRefusedBeforeParsing) {
  ServeOptions Opts;
  Opts.MaxRequestBytes = 64;
  AnalysisServer S(Opts);
  std::string Huge = lintLine(std::string(4096, 'x'), "big.arf", 1);
  json::Value Resp = parsed(call(S, Huge));
  EXPECT_FALSE(isOk(Resp));
  EXPECT_EQ(errorCode(Resp), "payload-too-large");
  // A fitting request still works afterwards.
  EXPECT_TRUE(isOk(parsed(call(S, "{\"method\":\"stats\"}"))));
}

TEST(ServerTest, FullQueueShedsWithOverloaded) {
  // One worker wedged on a stall; queue depth 1. The first extra
  // request queues, the second is shed immediately with overloaded.
  failpoint::ScopedFailPoint Stall("serve.request", failpoint::Action::Stall,
                                   1, 400);
  ServeOptions Opts;
  Opts.Workers = 1;
  Opts.QueueDepth = 1;
  Opts.RequestDeadlineMs = 0; // no watchdog: the stall must outlive us
  AnalysisServer S(Opts);

  auto Blocker = std::make_shared<std::promise<std::string>>();
  std::future<std::string> BlockerF = Blocker->get_future();
  S.submit("{\"method\":\"stats\",\"id\":1}",
           [Blocker](std::string R) { Blocker->set_value(std::move(R)); });
  // Give the worker a moment to pick the stalled request up.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto Queued = std::make_shared<std::promise<std::string>>();
  std::future<std::string> QueuedF = Queued->get_future();
  S.submit("{\"method\":\"stats\",\"id\":2}",
           [Queued](std::string R) { Queued->set_value(std::move(R)); });

  json::Value Shed = parsed(call(S, "{\"method\":\"stats\",\"id\":3}", 1000));
  EXPECT_FALSE(isOk(Shed));
  EXPECT_EQ(errorCode(Shed), "overloaded");
  EXPECT_GE(S.telemetry().get(telem::Counter::ServeOverloads), 1u);

  // Once the stall clears, both held requests answer normally.
  EXPECT_TRUE(isOk(parsed(BlockerF.get())));
  EXPECT_TRUE(isOk(parsed(QueuedF.get())));
}

TEST(ServerTest, ThrowingRequestIsContained) {
  failpoint::ScopedFailPoint Throw("serve.request",
                                   failpoint::Action::Throw, 1);
  AnalysisServer S;
  json::Value Resp = parsed(call(S, lintLine(GoodSource, "t.arf", 1)));
  EXPECT_FALSE(isOk(Resp));
  EXPECT_EQ(errorCode(Resp), "internal");
  // The worker survived the exception; the next request is served.
  EXPECT_TRUE(isOk(parsed(call(S, lintLine(GoodSource, "t.arf", 2)))));
}

TEST(ServerTest, SessionFailpointShedsDocumentCreation) {
  failpoint::ScopedFailPoint Breach("serve.session",
                                    failpoint::Action::Breach, 1);
  AnalysisServer S;
  json::Value Resp = parsed(call(S, lintLine(GoodSource, "s.arf", 1)));
  EXPECT_FALSE(isOk(Resp));
  EXPECT_EQ(errorCode(Resp), "overloaded");
  EXPECT_TRUE(isOk(parsed(call(S, lintLine(GoodSource, "s.arf", 2)))));
}

TEST(ServerTest, WatchdogFailsWedgedWorkerNotTheServer) {
  // A stall far past deadline+grace: the watchdog must answer the
  // request with a deadline error and replace the worker while the
  // stalled thread finishes into the void.
  failpoint::ScopedFailPoint Stall("serve.request", failpoint::Action::Stall,
                                   1, 1200);
  ServeOptions Opts;
  Opts.RequestDeadlineMs = 100;
  Opts.WatchdogGraceMs = 100;
  {
    AnalysisServer S(Opts);
    json::Value Resp =
        parsed(call(S, "{\"method\":\"stats\",\"id\":1}", 5000));
    EXPECT_FALSE(isOk(Resp));
    EXPECT_EQ(errorCode(Resp), "deadline");
    EXPECT_GE(S.telemetry().get(telem::Counter::ServeWatchdogKills), 1u);
    // The replacement worker serves the next request normally.
    EXPECT_TRUE(isOk(parsed(call(S, "{\"method\":\"stats\",\"id\":2}"))));
  }
  // Destruction with an abandoned worker still in its stall must not
  // crash or hang (it holds a shared_ptr to the server core). Wait out
  // the stall so the scoped failpoint outlives the sleeping evaluate.
  std::this_thread::sleep_for(std::chrono::milliseconds(1300));
}

TEST(ServerTest, ShutdownMethodDrainsAndShedsFollowups) {
  AnalysisServer S;
  json::Value Resp = parsed(call(S, "{\"method\":\"shutdown\",\"id\":1}"));
  ASSERT_TRUE(isOk(Resp)) << Resp.toString();
  EXPECT_TRUE(Resp.find("result")->find("shutting_down")->boolValue());
  EXPECT_TRUE(S.shutdownRequested());
  json::Value After = parsed(call(S, "{\"method\":\"stats\",\"id\":2}"));
  EXPECT_FALSE(isOk(After));
  EXPECT_EQ(errorCode(After), "shutting-down");
}

TEST(ServerTest, ParseBombIsAnsweredNotFatal) {
  AnalysisServer S;
  // 300 unclosed loops: the frontend's own depth cap contains it; the
  // daemon answers ok with parse-error diagnostics.
  std::string Bomb;
  for (int I = 0; I != 300; ++I)
    Bomb += "do i = 1, 10 {\n";
  json::Value Resp = parsed(call(S, lintLine(Bomb, "bomb.arf", 1), 60000));
  ASSERT_TRUE(isOk(Resp)) << Resp.toString();
  EXPECT_GE(Resp.find("result")->find("errors")->intValue(), 1);
  // An analyze of the same bomb is a bad-request (no partial program to
  // drive), with the parse diagnostics in the message.
  json::Value A = parsed(call(S, analyzeLine(Bomb, "bomb.arf", 2), 60000));
  EXPECT_FALSE(isOk(A));
  EXPECT_EQ(errorCode(A), "bad-request");
  // And the daemon still serves.
  EXPECT_TRUE(isOk(parsed(call(S, lintLine(GoodSource, "bomb.arf", 3)))));
}

TEST(ServerTest, StatsReportsCountersCacheAndLatency) {
  AnalysisServer S;
  call(S, lintLine(GoodSource, "a.arf", 1));
  call(S, "this is not json");
  json::Value Resp = parsed(call(S, "{\"method\":\"stats\",\"id\":7}"));
  ASSERT_TRUE(isOk(Resp)) << Resp.toString();
  const json::Value *R = Resp.find("result");
  const json::Value *Counters = R->find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GE(Counters->find("serve.requests")->intValue(), 3);
  EXPECT_GE(Counters->find("serve.errors")->intValue(), 1);
  const json::Value *CacheO = R->find("cache");
  ASSERT_NE(CacheO, nullptr);
  EXPECT_GE(CacheO->find("documents")->intValue(), 1);
  const json::Value *H = R->find("request_ns");
  ASSERT_NE(H, nullptr);
  EXPECT_GE(H->find("count")->intValue(), 2);
  EXPECT_GT(H->find("p50_ns")->intValue(), 0);
}

TEST(ServerTest, TenantQuotaEvictsOnlyThatTenant) {
  ServeOptions Opts;
  Opts.TenantQuota = 2;
  AnalysisServer S(Opts);
  // Tenant "noisy" streams unique files past its quota; tenant "quiet"
  // keeps one warm document.
  std::string Quiet =
      "{\"method\":\"analyze\",\"tenant\":\"quiet\",\"file\":\"q.arf\","
      "\"source\":";
  json::appendQuoted(Quiet, GoodSource);
  Quiet += "}";
  EXPECT_TRUE(isOk(parsed(call(S, Quiet))));
  for (int I = 0; I != 6; ++I) {
    std::string Line =
        "{\"method\":\"lint\",\"tenant\":\"noisy\",\"file\":\"f" +
        std::to_string(I) + ".arf\",\"source\":";
    json::appendQuoted(Line, GoodSource);
    Line += "}";
    EXPECT_TRUE(isOk(parsed(call(S, Line))));
  }
  ServeCacheStats CS = S.cacheStats();
  EXPECT_EQ(CS.Tenants, 2u);
  EXPECT_EQ(CS.Documents, 3u) << "noisy clamped to 2 + quiet's 1";
  EXPECT_GE(CS.Evictions, 4u);
  // quiet's document survived the noisy tenant's thrash: the identical
  // request replays from its response memo (a cache hit), which only
  // exists if the document was never evicted.
  uint64_t HitsBefore = S.telemetry().get(telem::Counter::ServeCacheHits);
  json::Value Again = parsed(call(S, Quiet));
  ASSERT_TRUE(isOk(Again)) << Again.toString();
  EXPECT_GT(S.telemetry().get(telem::Counter::ServeCacheHits), HitsBefore);
}
