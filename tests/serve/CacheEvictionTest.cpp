//===- tests/serve/CacheEvictionTest.cpp - Eviction vs session stats ------===//
//
// Regression coverage for the quota/LRU layer interacting with live
// analysis: when ServeCache evicts a document while a multithreaded
// driver is still working on it, the eviction only detaches the
// document from the map -- the worker finishes on its shared_ptr, and
// every LoopAnalysisSession's SessionCacheStats stays internally
// consistent (misses equal objects built, solve counts equal solution
// misses). The structural tallies must add up too: documents never
// exceed tenant quotas, and evictions equal creations minus residents.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeCache.h"

#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace ardf;
using namespace ardf::serve;

namespace {

/// A three-loop program (one nest) so the driver has parallel work and
/// the sessions memoize several instances each.
const char *Source = "do i = 1, 12 {\n"
                     "  A[i] = B[i] + 1;\n"
                     "  C[i] = A[i];\n"
                     "}\n"
                     "do j = 1, 8 {\n"
                     "  do k = 1, 6 {\n"
                     "    X[j, k] = X[j, k] + Y[k];\n"
                     "  }\n"
                     "}\n";

/// Builds and runs a multithreaded driver on \p D, then checks every
/// session's cache tallies for internal consistency.
void analyzeAndCheck(Document &D) {
  std::lock_guard<std::mutex> L(D.M);
  ParseResult PR = parseProgram(Source);
  ASSERT_TRUE(PR.succeeded());
  auto Prog = std::make_unique<Program>(std::move(PR.Prog));
  DriverOptions DO;
  DO.Threads = 3;
  D.Driver = std::make_unique<ProgramAnalysisDriver>(*Prog, std::move(DO));
  D.Programs.push_back(std::move(Prog));
  D.RetainedBytes += std::string(Source).size();
  D.Driver->run();
  EXPECT_GE(D.Driver->report().Ok, 2u);
  EXPECT_EQ(D.Driver->report().Failed, 0u);
  uint64_t TotalSolves = 0;
  for (const AnalyzedLoop &L2 : D.Driver->loops()) {
    if (!L2.Session)
      continue;
    SessionCacheStats S = L2.Session->cacheStats();
    // Misses are builds: they must match the session's own build
    // counters exactly, even though the driver ran multithreaded and
    // the document may have been evicted mid-run.
    EXPECT_EQ(S.InstanceMisses, L2.Session->instancesBuilt());
    EXPECT_EQ(S.SolutionMisses, L2.Session->solvesPerformed());
    // A solution needs its instance first: solves can never outnumber
    // instance uses.
    EXPECT_LE(S.SolutionMisses, S.InstanceHits + S.InstanceMisses);
    TotalSolves += S.SolutionMisses;
  }
  EXPECT_GT(TotalSolves, 0u);
}

} // namespace

TEST(CacheEvictionTest, EvictedDocumentFinishesWithConsistentStats) {
  ServeCache Cache(/*TenantQuota=*/1);
  bool Created = false;
  std::shared_ptr<Document> Held = Cache.lookup("t", "held.arf", Created);
  EXPECT_TRUE(Created);

  // Evict held.arf by streaming other files through the quota-1 tenant
  // while a worker thread analyzes the held document.
  std::thread Worker([&] { analyzeAndCheck(*Held); });
  for (int I = 0; I != 8; ++I)
    Cache.lookup("t", "thrash" + std::to_string(I) + ".arf", Created);
  Worker.join();

  ServeCacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Tenants, 1u);
  EXPECT_EQ(CS.Documents, 1u); // quota holds
  // 9 creations, 1 resident: 8 evictions (held.arf was the first out).
  EXPECT_EQ(CS.Evictions, 8u);
  // The held document is detached but alive and fully analyzed.
  EXPECT_NE(Held->Driver, nullptr);
  EXPECT_GE(Held->Driver->report().Ok, 2u);

  // Re-looking the evicted file up makes a FRESH document: the old
  // warm state is not resurrected (no aliasing with Held).
  std::shared_ptr<Document> Again = Cache.lookup("t", "held.arf", Created);
  EXPECT_TRUE(Created);
  EXPECT_NE(Again.get(), Held.get());
  EXPECT_EQ(Again->Driver, nullptr);
}

TEST(CacheEvictionTest, ConcurrentTenantsEvictIndependently) {
  // N tenants hammered by N threads, each streaming unique files past
  // its quota while analyzing every document it touches. Tenant
  // partitions must stay independent and the global tallies exact.
  constexpr unsigned NumTenants = 4;
  constexpr unsigned FilesPerTenant = 6;
  constexpr unsigned Quota = 2;
  ServeCache Cache(Quota);
  std::atomic<unsigned> Creations{0};

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumTenants; ++T) {
    Threads.emplace_back([&, T] {
      std::string Tenant = "tenant" + std::to_string(T);
      for (unsigned F = 0; F != FilesPerTenant; ++F) {
        bool Created = false;
        std::shared_ptr<Document> D = Cache.lookup(
            Tenant, "f" + std::to_string(F) + ".arf", Created);
        if (Created)
          Creations.fetch_add(1);
        analyzeAndCheck(*D);
      }
    });
  }
  for (std::thread &Th : Threads)
    Th.join();

  ServeCacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Tenants, NumTenants);
  EXPECT_EQ(CS.Documents, NumTenants * Quota);
  EXPECT_EQ(Creations.load(), NumTenants * FilesPerTenant);
  EXPECT_EQ(CS.Evictions, NumTenants * (FilesPerTenant - Quota));
  EXPECT_GT(CS.ResidentBytes, 0u);

  // LRU order: the last two files of each tenant are the residents, so
  // touching them is not a creation, while the first file is gone.
  for (unsigned T = 0; T != NumTenants; ++T) {
    std::string Tenant = "tenant" + std::to_string(T);
    bool Created = true;
    Cache.lookup(Tenant, "f" + std::to_string(FilesPerTenant - 1) + ".arf",
                 Created);
    EXPECT_FALSE(Created) << Tenant;
    Cache.lookup(Tenant, "f0.arf", Created);
    EXPECT_TRUE(Created) << Tenant;
  }

  Cache.clear();
  CS = Cache.stats();
  EXPECT_EQ(CS.Documents, 0u);
}
