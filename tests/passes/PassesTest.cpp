//===- tests/passes/PassesTest.cpp - Normalization and validation --------===//

#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "passes/LoopNormalize.h"
#include "passes/Validate.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

void checkEquivalent(const Program &A, const Program &B,
                     const std::map<std::string, int64_t> &Scalars = {}) {
  Interpreter IA(A), IB(B);
  for (const auto &[Name, Value] : Scalars) {
    IA.setScalar(Name, Value);
    IB.setScalar(Name, Value);
  }
  IA.seedArray("A", 128, 9);
  IB.seedArray("A", 128, 9);
  IA.run();
  IB.run();
  EXPECT_EQ(IA.state().Arrays, IB.state().Arrays)
      << programToString(A) << "--- normalized:\n" << programToString(B);
}

} // namespace

TEST(LoopNormalizeTest, ShiftedLowerBound) {
  Program P = parseOrDie("do i = 3, 12 { A[i] = i * 2; }");
  NormalizeResult R = normalizeLoops(P);
  EXPECT_EQ(R.LoopsNormalized, 1u);
  const DoLoopStmt *Loop = R.Transformed.getFirstLoop();
  ASSERT_NE(Loop, nullptr);
  EXPECT_TRUE(Loop->isNormalized());
  EXPECT_EQ(Loop->getConstantTripCount(), 10);
  checkEquivalent(P, R.Transformed);
}

TEST(LoopNormalizeTest, StridedLoop) {
  Program P = parseOrDie("do i = 1, 20, 3 { A[i] = i; }");
  NormalizeResult R = normalizeLoops(P);
  EXPECT_EQ(R.LoopsNormalized, 1u);
  EXPECT_EQ(R.Transformed.getFirstLoop()->getConstantTripCount(), 7);
  checkEquivalent(P, R.Transformed);
}

TEST(LoopNormalizeTest, DownwardLoop) {
  Program P = parseOrDie("do i = 10, 1, -1 { A[i] = 11 - i; }");
  NormalizeResult R = normalizeLoops(P);
  EXPECT_EQ(R.LoopsNormalized, 1u);
  EXPECT_TRUE(R.Transformed.getFirstLoop()->isNormalized());
  checkEquivalent(P, R.Transformed);
}

TEST(LoopNormalizeTest, SymbolicBounds) {
  Program P = parseOrDie("do i = 2, N { A[i] = i; }");
  NormalizeResult R = normalizeLoops(P);
  EXPECT_EQ(R.LoopsNormalized, 1u);
  checkEquivalent(P, R.Transformed, {{"N", 23}});
}

TEST(LoopNormalizeTest, AlreadyNormalizedUntouched) {
  Program P = parseOrDie("do i = 1, 10 { A[i] = i; }");
  NormalizeResult R = normalizeLoops(P);
  EXPECT_EQ(R.LoopsNormalized, 0u);
  EXPECT_EQ(programToString(R.Transformed), programToString(P));
}

TEST(LoopNormalizeTest, NestedLoops) {
  Program P = parseOrDie(
      "do j = 2, 9 { do i = 0, 6, 2 { A[8 * j + i] = i + j; } }");
  NormalizeResult R = normalizeLoops(P);
  EXPECT_EQ(R.LoopsNormalized, 2u);
  checkEquivalent(P, R.Transformed);
}

TEST(LoopNormalizeTest, SubscriptsStayAffine) {
  Program P = parseOrDie("do i = 3, 30, 3 { A[2 * i + 1] = A[2 * i - 5]; }");
  NormalizeResult R = normalizeLoops(P);
  checkEquivalent(P, R.Transformed);
  std::vector<ValidationIssue> Issues =
      validateForAnalysis(R.Transformed);
  for (const ValidationIssue &I : Issues)
    EXPECT_NE(I.Message.find("not affine"), std::string::npos)
        << "unexpected issue: " << I.Message;
  EXPECT_TRUE(Issues.empty());
}

TEST(ValidateTest, CleanProgram) {
  Program P = parseOrDie("do i = 1, 10 { A[i+1] = A[i]; }");
  EXPECT_TRUE(validateForAnalysis(P).empty());
}

TEST(ValidateTest, FlagsNonNormalized) {
  Program P = parseOrDie("do i = 2, 10 { A[i] = 0; }");
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  ASSERT_FALSE(Issues.empty());
  EXPECT_EQ(Issues[0].Severity, IssueSeverity::Warning);
  EXPECT_TRUE(isAnalyzable(Issues));
}

TEST(ValidateTest, FlagsInductionVariableAssignment) {
  Program P = parseOrDie("do i = 1, 10 { i = i + 2; }");
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  EXPECT_FALSE(isAnalyzable(Issues));
}

TEST(ValidateTest, FlagsNonAffineSubscript) {
  Program P = parseOrDie("do i = 1, 10 { A[i * i] = 0; }");
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].Message.find("not affine"), std::string::npos);
  EXPECT_TRUE(isAnalyzable(Issues)); // warning only: handled conservatively
}

TEST(ValidateTest, FlagsUndeclaredMultiDim) {
  Program P = parseOrDie("do i = 1, 10 { X[i, 1] = 0; }");
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].Message.find("undeclared"), std::string::npos);
}

TEST(ValidateTest, SubscriptIssueAnchorsAtReference) {
  Program P = parseOrDie("do i = 1, 10 {\n  A[i * i] = 0;\n}");
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  ASSERT_FALSE(Issues.empty());
  const ValidationIssue &I = Issues[0];
  EXPECT_EQ(I.StmtId, 2u); // pre-order: the loop is 1, the assignment 2
  EXPECT_EQ(I.Loc, SourceLoc(2, 3)); // at A[i * i], not at the statement
  ASSERT_NE(I.Offending, nullptr);
  EXPECT_EQ(I.Offending->getKind(), Stmt::Kind::Assign);
}

TEST(ValidateTest, InductionVariableIssueAnchorsAtAssignment) {
  Program P = parseOrDie("do i = 1, 10 {\n  B[i] = 1;\n  i = i + 2;\n}");
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  ASSERT_FALSE(Issues.empty());
  const ValidationIssue &I = Issues[0];
  EXPECT_EQ(I.Severity, IssueSeverity::Error);
  EXPECT_EQ(I.StmtId, 3u);
  EXPECT_EQ(I.Loc, SourceLoc(3, 3));
  ASSERT_NE(I.Offending, nullptr);
  EXPECT_TRUE(isa<AssignStmt>(I.Offending));
}

TEST(ValidateTest, NonNormalizedIssueAnchorsAtLoop) {
  Program P = parseOrDie("B[1] = 0;\ndo i = 2, 10 {\n  A[i] = 0;\n}");
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  ASSERT_FALSE(Issues.empty());
  const ValidationIssue &I = Issues[0];
  EXPECT_EQ(I.StmtId, 2u); // top-level assignment is 1, the loop is 2
  EXPECT_EQ(I.Loc, SourceLoc(2, 1));
  ASSERT_NE(I.Offending, nullptr);
  EXPECT_TRUE(isa<DoLoopStmt>(I.Offending));
}

TEST(ValidateTest, ProgrammaticIrHasInvalidLocationsButValidIds) {
  // IR built without the parser carries no source positions; issues
  // still identify their statement by id.
  Program Parsed = parseOrDie("do i = 1, 10 { i = 0; }");
  Program P = Parsed.clone();
  forEachStmt(P.getStmts(), [](const Stmt &S) {
    const_cast<Stmt &>(S).setLoc(SourceLoc());
  });
  std::vector<ValidationIssue> Issues = validateForAnalysis(P);
  ASSERT_FALSE(Issues.empty());
  EXPECT_FALSE(Issues[0].Loc.isValid());
  EXPECT_EQ(Issues[0].StmtId, 2u);
}
