//===- tests/integration/SemanticOracleTest.cpp - Claims vs execution ----===//
//
// The definitive semantic validation of the framework: a tracing
// executor runs random loops iteration by iteration, recording which
// reference occurrence produced every value; every must-reuse claim the
// framework makes (reaching definitions and available values) is then
// checked against the trace:
//
//   if the framework claims "sink u re-reads the value source d
//   generated delta iterations earlier", then on EVERY dynamic
//   execution of u at iteration i (past the delta startup iterations,
//   Section 3.2) where d executed at iteration i - delta, the value u
//   reads must equal the value d generated there.
//
// Any unsound preserve constant, pr predicate, meet, or reuse-distance
// computation shows up as a concrete counterexample here.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

using namespace ardf;

namespace {

/// Deterministic generator (mirrors the transform property tests).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 1099511628211ULL + 3) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }
};

std::string randomRef(Rng &R) {
  static const char *Arrays[] = {"A", "B"};
  std::ostringstream OS;
  OS << Arrays[R.range(0, 1)] << '[';
  if (R.chance(30))
    OS << R.range(1, 2) << " * ";
  OS << 'i';
  int64_t Off = R.range(-2, 2);
  if (Off > 0)
    OS << " + " << Off;
  else if (Off < 0)
    OS << " - " << -Off;
  OS << ']';
  return OS.str();
}

std::string randomLoop(uint64_t Seed) {
  Rng R(Seed);
  std::ostringstream OS;
  OS << "do i = 1, " << R.range(8, 40) << " { ";
  unsigned N = R.range(2, 5);
  for (unsigned S = 0; S != N; ++S) {
    if (R.chance(35)) {
      OS << "if (" << randomRef(R) << " > " << R.range(-60, 60) << ") { "
         << randomRef(R) << " = " << randomRef(R) << " + " << R.range(1, 9)
         << "; } ";
      continue;
    }
    OS << randomRef(R) << " = " << randomRef(R) << " + " << R.range(1, 9)
       << "; ";
  }
  OS << "}";
  return OS.str();
}

/// Traces one loop execution: memory values plus, per reference
/// occurrence and iteration, the value it generated (write for defs,
/// read for uses).
class Tracer {
public:
  Tracer(const Program &P, const DoLoopStmt &Loop,
         const ReferenceUniverse &U)
      : Loop(Loop) {
    for (const RefOccurrence &Occ : U.occurrences())
      ByRef[Occ.Ref] = Occ.Id;
    (void)P;
  }

  void seed(uint64_t Seed) {
    Rng R(Seed ^ 0x5eed);
    for (const char *Arr : {"A", "B"})
      for (int64_t K = -20; K != 120; ++K)
        Mem[Arr][K] = R.range(-100, 100);
  }

  void run() {
    int64_t Trip = Loop.getConstantTripCount();
    ASSERT_GT(Trip, 0);
    for (Iter = 1; Iter <= Trip; ++Iter)
      execStmts(Loop.getBody());
  }

  /// One dynamic generation/read event.
  struct Event {
    int64_t Iter;
    uint64_t Seq;
    int64_t Value;
  };

  /// The generation event of occurrence \p OccId at iteration \p I, if
  /// it executed there.
  std::optional<Event> generated(unsigned OccId, int64_t I) const {
    auto It = Generated.find({OccId, I});
    if (It == Generated.end())
      return std::nullopt;
    return It->second;
  }

  /// All dynamic reads of occurrence \p OccId.
  const std::vector<Event> &reads(unsigned OccId) const {
    static const std::vector<Event> Empty;
    auto It = Reads.find(OccId);
    return It == Reads.end() ? Empty : It->second;
  }

private:
  int64_t evalExpr(const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::IntLit:
      return cast<IntLit>(&E)->getValue();
    case Expr::Kind::VarRef: {
      const std::string &Name = cast<VarRef>(&E)->getName();
      return Name == Loop.getIndVar() ? Iter : Scalars[Name];
    }
    case Expr::Kind::ArrayRef: {
      const auto *AR = cast<ArrayRefExpr>(&E);
      int64_t Index = evalExpr(*AR->getSubscript(0));
      int64_t Value = Mem[AR->getName()][Index];
      unsigned Id = ByRef.at(AR);
      uint64_t S = ++Seq;
      Generated[{Id, Iter}] = Event{Iter, S, Value};
      Reads[Id].push_back(Event{Iter, S, Value});
      return Value;
    }
    case Expr::Kind::Unary: {
      const auto *UE = cast<UnaryExpr>(&E);
      int64_t V = evalExpr(*UE->getOperand());
      return UE->getOp() == UnaryOpKind::Neg ? -V : !V;
    }
    case Expr::Kind::Binary: {
      const auto *BE = cast<BinaryExpr>(&E);
      int64_t L = evalExpr(*BE->getLHS());
      int64_t R = evalExpr(*BE->getRHS());
      switch (BE->getOp()) {
      case BinaryOpKind::Add:
        return L + R;
      case BinaryOpKind::Sub:
        return L - R;
      case BinaryOpKind::Mul:
        return L * R;
      case BinaryOpKind::Div:
        return R == 0 ? 0 : L / R;
      case BinaryOpKind::Eq:
        return L == R;
      case BinaryOpKind::Ne:
        return L != R;
      case BinaryOpKind::Lt:
        return L < R;
      case BinaryOpKind::Le:
        return L <= R;
      case BinaryOpKind::Gt:
        return L > R;
      case BinaryOpKind::Ge:
        return L >= R;
      case BinaryOpKind::And:
        return L && R;
      case BinaryOpKind::Or:
        return L || R;
      }
      return 0;
    }
    }
    return 0;
  }

  void execStmts(const StmtList &Stmts) {
    for (const StmtPtr &S : Stmts) {
      switch (S->getKind()) {
      case Stmt::Kind::Assign: {
        const auto *AS = cast<AssignStmt>(S.get());
        int64_t Value = evalExpr(*AS->getRHS());
        if (const ArrayRefExpr *Target = AS->getArrayTarget()) {
          int64_t Index = evalExpr(*Target->getSubscript(0));
          Mem[Target->getName()][Index] = Value;
          Generated[{ByRef.at(Target), Iter}] = Event{Iter, ++Seq, Value};
        } else {
          Scalars[cast<VarRef>(AS->getLHS())->getName()] = Value;
        }
        break;
      }
      case Stmt::Kind::If: {
        const auto *IS = cast<IfStmt>(S.get());
        if (evalExpr(*IS->getCond()) != 0)
          execStmts(IS->getThen());
        else
          execStmts(IS->getElse());
        break;
      }
      case Stmt::Kind::DoLoop:
      case Stmt::Kind::While:
      case Stmt::Kind::Break:
        FAIL() << "oracle corpus has no nested loops or while/break";
      }
    }
  }

  const DoLoopStmt &Loop;
  std::map<const ArrayRefExpr *, unsigned> ByRef;
  std::map<std::string, std::map<int64_t, int64_t>> Mem;
  std::map<std::string, int64_t> Scalars;
  std::map<std::pair<unsigned, int64_t>, Event> Generated;
  std::map<unsigned, std::vector<Event>> Reads;
  int64_t Iter = 0;
  uint64_t Seq = 0;
};

/// Verifies every reuse pair of \p Spec against the trace.
void verifyClaims(const std::string &Source, uint64_t Seed,
                  ProblemSpec Spec) {
  Program P = parseOrDie(Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  LoopDataFlow DF(P, Loop, Spec);
  const ReferenceUniverse &U = DF.universe();

  Tracer T(P, Loop, U);
  T.seed(Seed);
  T.run();

  for (const ReusePair &Pair : DF.reusePairs(RefSelector::Uses)) {
    // Grouped sources: any member generation at i - delta backs the
    // claim; with per-occurrence specs the group is a singleton.
    int SrcIdx = DF.framework().trackedIndexOf(Pair.SourceId);
    ASSERT_GE(SrcIdx, 0);
    for (const auto &Read : T.reads(Pair.SinkId)) {
      int64_t GenIter = Read.Iter - Pair.Distance;
      if (GenIter < 1)
        continue; // startup iterations are exempt (Section 3.2)
      // The value the sink must see is the one produced by the LAST
      // member generation at GenIter preceding the read (members of a
      // grouped source regenerate the value along the iteration).
      std::optional<Tracer::Event> Latest;
      for (unsigned MemberId : DF.framework().trackedMembers(SrcIdx)) {
        std::optional<Tracer::Event> Gen = T.generated(MemberId, GenIter);
        if (!Gen || Gen->Seq >= Read.Seq)
          continue; // did not execute, or not before the read
        if (!Latest || Gen->Seq > Latest->Seq)
          Latest = Gen;
      }
      if (!Latest)
        continue; // no backing execution: the instance does not exist
      EXPECT_EQ(Read.Value, Latest->Value)
          << "UNSOUND claim in " << Spec.Name << ":\n  "
          << exprToString(*U.occurrence(Pair.SinkId).Ref)
          << " at iteration " << Read.Iter << " should re-read what "
          << exprToString(*U.occurrence(Pair.SourceId).Ref)
          << " generated at iteration " << GenIter << "\nloop:\n"
          << Source;
    }
  }
}

class SemanticOracle : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SemanticOracle, MustReachingDefsClaimsHold) {
  uint64_t Seed = GetParam();
  verifyClaims(randomLoop(Seed), Seed, ProblemSpec::mustReachingDefs());
}

TEST_P(SemanticOracle, AvailableValuesClaimsHold) {
  uint64_t Seed = GetParam();
  verifyClaims(randomLoop(Seed), Seed, ProblemSpec::availableValues());
}

TEST_P(SemanticOracle, AvailableValuesPerOccurrenceClaimsHold) {
  uint64_t Seed = GetParam();
  verifyClaims(randomLoop(Seed), Seed,
               ProblemSpec::availableValuesPerOccurrence());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticOracle,
                         ::testing::Range<uint64_t>(1, 61));

// The Fig. 1 loop, claims checked against real execution.
TEST(SemanticOracleFixed, Fig1) {
  const char *Fig1 = R"(
    do i = 1, 50 {
      C[i+2] = C[i] * 2;
      B[2*i] = C[i] + 3;
      if (C[i] == 0) { C[i] = B[i-1]; }
      B[i] = C[i+1];
    })";
  // Arrays named A/B in the tracer seed; rename C -> A textually.
  std::string Source = Fig1;
  for (size_t Pos = 0; (Pos = Source.find('C', Pos)) != std::string::npos;
       ++Pos)
    Source[Pos] = 'A';
  verifyClaims(Source, 42, ProblemSpec::mustReachingDefs());
  verifyClaims(Source, 42, ProblemSpec::availableValues());
}
