//===- tests/integration/KernelsTest.cpp - Realistic kernels end to end --===//
//
// Integration coverage on the kind of scientific kernels the paper's
// introduction motivates: each kernel runs through normalization,
// analysis, the full optimization pipeline (store elim -> load elim ->
// controlled unrolling), and machine code generation, with behavior
// verified against the reference interpreter at every step.
//
//===----------------------------------------------------------------------===//

#include "codegen/LoopCodeGen.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "machine/Simulator.h"
#include "passes/LoopNormalize.h"
#include "passes/Validate.h"
#include "transform/LoadElimination.h"
#include "transform/LoopUnroll.h"
#include "transform/StoreElimination.h"
#include "unroll/UnrollController.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

struct Kernel {
  const char *Name;
  const char *Source;
};

const Kernel Kernels[] = {
    {"first-order smoothing (stencil)",
     "do i = 1, 500 { B[i] = (A[i-1] + A[i] + A[i+1]) / 3; }"},
    {"prefix recurrence",
     "do i = 1, 500 { A[i] = A[i-1] + B[i]; }"},
    {"second-order wave",
     "do i = 1, 500 { A[i+2] = A[i+1] * 2 - A[i] + B[i]; }"},
    {"thresholded update (conditional)",
     "do i = 1, 500 { if (A[i] > 100) { A[i] = 100; } "
     "B[i] = A[i] + C[i]; }"},
    {"tridiagonal-like sweep",
     "do i = 1, 500 { C[i] = C[i-1] * B[i] + A[i]; "
     "D_[i] = C[i] + C[i-1]; }"},
    {"non-unit stride (normalized first)",
     "do i = 2, 999, 2 { A[i] = A[i-2] + 1; }"},
};

MachineState runInterp(const Program &P, ExecStats *Stats = nullptr) {
  Interpreter I(P);
  for (const char *Arr : {"A", "B", "C", "D_"})
    I.seedArray(Arr, 600, 31);
  I.run();
  if (Stats)
    *Stats = I.stats();
  MachineState S = I.state();
  S.Scalars.clear(); // temporaries differ by construction
  return S;
}

class KernelTest : public ::testing::TestWithParam<size_t> {};

} // namespace

TEST_P(KernelTest, FullPipelinePreservesBehavior) {
  const Kernel &K = Kernels[GetParam()];
  Program Original = parseOrDie(K.Source);

  // Stage 1: normalization.
  NormalizeResult Norm = normalizeLoops(Original);
  EXPECT_EQ(runInterp(Original).Arrays, runInterp(Norm.Transformed).Arrays)
      << K.Name << " (normalize)";
  EXPECT_TRUE(isAnalyzable(validateForAnalysis(Norm.Transformed)))
      << K.Name;

  // Stage 2: store + load elimination.
  StoreElimResult SE = eliminateRedundantStores(Norm.Transformed);
  LoadElimResult LE = eliminateRedundantLoads(SE.Transformed);
  ExecStats Before, After;
  MachineState SOrig = runInterp(Original, &Before);
  MachineState SOpt = runInterp(LE.Transformed, &After);
  EXPECT_EQ(SOrig.Arrays, SOpt.Arrays) << K.Name << " (load/store elim)\n"
                                       << programToString(LE.Transformed);
  EXPECT_LE(After.memoryAccesses(), Before.memoryAccesses() + 8)
      << K.Name << ": the pipeline must not pessimize memory traffic";

  // Stage 3: controlled unrolling on top.
  const DoLoopStmt *Loop = LE.Transformed.getFirstLoop();
  ASSERT_NE(Loop, nullptr);
  UnrollPlan Plan = controlUnrolling(LE.Transformed, *Loop);
  if (Plan.ChosenFactor > 1) {
    Program Unrolled = unrollProgram(LE.Transformed, Plan.ChosenFactor);
    EXPECT_EQ(SOrig.Arrays, runInterp(Unrolled).Arrays)
        << K.Name << " (unroll x" << Plan.ChosenFactor << ")";
  }
}

TEST_P(KernelTest, CodeGenMatchesInterpreter) {
  const Kernel &K = Kernels[GetParam()];
  Program P = parseOrDie(K.Source);
  NormalizeResult Norm = normalizeLoops(P);

  for (PipelineMode Mode :
       {PipelineMode::None, PipelineMode::Moves, PipelineMode::Rotate}) {
    CodeGenOptions Opts;
    Opts.Mode = Mode;
    CodeGenResult CG = generateLoopCode(Norm.Transformed, Opts);

    Interpreter Ref(Norm.Transformed);
    MachineSimulator Sim(CG.Prog);
    for (const char *Arr : {"A", "B", "C", "D_"}) {
      Ref.seedArray(Arr, 600, 31);
      for (int64_t C = 0; C != 600; ++C)
        Sim.setArrayCell(Arr, C, Ref.arrayCell(Arr, C));
    }
    Ref.run();
    Sim.run();
    EXPECT_EQ(Sim.memory(), Ref.state().Arrays)
        << K.Name << " mode " << static_cast<int>(Mode);
  }
}

TEST_P(KernelTest, PipeliningReducesOrMaintainsLoads) {
  const Kernel &K = Kernels[GetParam()];
  Program P = parseOrDie(K.Source);
  NormalizeResult Norm = normalizeLoops(P);

  auto LoadsFor = [&](PipelineMode Mode) {
    CodeGenOptions Opts;
    Opts.Mode = Mode;
    CodeGenResult CG = generateLoopCode(Norm.Transformed, Opts);
    MachineSimulator Sim(CG.Prog);
    Sim.run();
    return Sim.stats().Loads;
  };
  uint64_t Conv = LoadsFor(PipelineMode::None);
  uint64_t Pipe = LoadsFor(PipelineMode::Rotate);
  EXPECT_LE(Pipe, Conv + 8) << K.Name;
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelTest,
                         ::testing::Range<size_t>(0, std::size(Kernels)));

TEST(KernelsExtra, StencilLoadReductionIsLarge) {
  // The smoothing stencil re-reads A[i-1] and A[i] from earlier
  // iterations: 3 loads/iter collapse to ~1.
  Program P =
      parseOrDie("do i = 1, 500 { B[i] = (A[i-1] + A[i] + A[i+1]) / 3; }");
  LoadElimResult R = eliminateRedundantLoads(P);
  Interpreter Before(P), After(R.Transformed);
  Before.seedArray("A", 600, 31);
  After.seedArray("A", 600, 31);
  Before.run();
  After.run();
  EXPECT_EQ(Before.stats().ArrayLoads, 1500u);
  EXPECT_LE(After.stats().ArrayLoads, 510u);
  EXPECT_EQ(Before.state().Arrays, After.state().Arrays);
}

TEST(KernelsExtra, WaveEquationPipelinesBothTaps) {
  Program P = parseOrDie(
      "do i = 1, 500 { A[i+2] = A[i+1] * 2 - A[i] + B[i]; }");
  LoadElimResult R = eliminateRedundantLoads(P);
  Interpreter Before(P), After(R.Transformed);
  for (const char *Arr : {"A", "B"}) {
    Before.seedArray(Arr, 600, 31);
    After.seedArray(Arr, 600, 31);
  }
  Before.run();
  After.run();
  // A[i+1] and A[i] both come from the pipeline; only B[i] is loaded.
  EXPECT_EQ(Before.stats().ArrayLoads, 1500u);
  EXPECT_LE(After.stats().ArrayLoads, 505u);
  EXPECT_EQ(Before.state().Arrays, After.state().Arrays);
}
