//===- tests/lattice/PackedDistanceTest.cpp - Packed encoding oracle -----===//
//
// Exhaustive round-trip and operator-agreement properties of the packed
// chain-lattice encoding: pack must be an order isomorphism that
// commutes with min, max, increment, and covers, including the
// saturation boundary at TripCount - 1 and the unknown trip count. This
// is the algebraic half of the kernel-vs-reference guarantee; the
// solver half lives in tests/dataflow/KernelSolverTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "lattice/PackedDistance.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

using namespace ardf;

namespace {

/// Boundary-heavy corpus: the extremes, small finites, values around
/// every trip count used below, and a large finite.
std::vector<DistanceValue> corpus() {
  std::vector<DistanceValue> Vals = {DistanceValue::noInstance(),
                                     DistanceValue::allInstances()};
  for (int64_t D : {0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 98, 99, 100, 101})
    Vals.push_back(DistanceValue::finite(D));
  Vals.push_back(DistanceValue::finite(int64_t(1) << 40));
  Vals.push_back(
      DistanceValue::finite(std::numeric_limits<int64_t>::max() - 1));
  return Vals;
}

const int64_t Trips[] = {UnknownTripCount, 1, 2, 3, 5, 10, 100, 1000};

} // namespace

TEST(PackedDistanceTest, RoundTripIsExact) {
  for (const DistanceValue &V : corpus()) {
    DistanceValue Back = packed::unpack(packed::pack(V));
    EXPECT_EQ(Back, V) << V.toString();
  }
  // And from the packed side, including the reserved extremes.
  for (packed::PackedDistance X :
       {packed::NoInstance, packed::Zero, packed::PackedDistance(2),
        packed::PackedDistance(1000), packed::AllInstances})
    EXPECT_EQ(packed::pack(packed::unpack(X)), X);
}

TEST(PackedDistanceTest, NamedConstantsMatchReference) {
  EXPECT_EQ(packed::pack(DistanceValue::noInstance()), packed::NoInstance);
  EXPECT_EQ(packed::pack(DistanceValue::allInstances()),
            packed::AllInstances);
  EXPECT_EQ(packed::pack(DistanceValue::finite(0)), packed::Zero);
}

TEST(PackedDistanceTest, PackIsAnOrderIsomorphism) {
  std::vector<DistanceValue> Vals = corpus();
  for (const DistanceValue &A : Vals)
    for (const DistanceValue &B : Vals) {
      EXPECT_EQ(A < B, packed::pack(A) < packed::pack(B))
          << A.toString() << " vs " << B.toString();
      EXPECT_EQ(A == B, packed::pack(A) == packed::pack(B));
    }
}

TEST(PackedDistanceTest, MeetsCommuteWithPack) {
  std::vector<DistanceValue> Vals = corpus();
  for (const DistanceValue &A : Vals)
    for (const DistanceValue &B : Vals) {
      EXPECT_EQ(packed::pack(DistanceValue::min(A, B)),
                packed::meetMust(packed::pack(A), packed::pack(B)));
      EXPECT_EQ(packed::pack(DistanceValue::max(A, B)),
                packed::meetMay(packed::pack(A), packed::pack(B)));
    }
}

TEST(PackedDistanceTest, IncrementCommutesWithPack) {
  std::vector<DistanceValue> Vals = corpus();
  for (int64_t Trip : Trips) {
    uint64_t Bound = packed::incrementBound(Trip);
    for (const DistanceValue &V : Vals) {
      EXPECT_EQ(packed::pack(V.increment(Trip)),
                packed::increment(packed::pack(V), Bound))
          << V.toString() << " trip " << Trip;
    }
  }
}

TEST(PackedDistanceTest, IncrementSaturatesAtTripBound) {
  // The saturation boundary of Section 3.1.3: with trip count T, the
  // increment of finite d reaches AllInstances exactly when d+1 >= T-1.
  for (int64_t Trip : {2, 3, 5, 100}) {
    uint64_t Bound = packed::incrementBound(Trip);
    for (int64_t D = 0; D <= Trip + 1; ++D) {
      packed::PackedDistance Inc = packed::increment(packed::finite(D), Bound);
      if (D + 1 >= Trip - 1)
        EXPECT_EQ(Inc, packed::AllInstances) << "d=" << D << " T=" << Trip;
      else
        EXPECT_EQ(Inc, packed::finite(D + 1)) << "d=" << D << " T=" << Trip;
    }
  }
  // Unknown trip count never saturates and fixes both extremes.
  uint64_t B = packed::incrementBound(UnknownTripCount);
  EXPECT_EQ(packed::increment(packed::finite(1000), B), packed::finite(1001));
  EXPECT_EQ(packed::increment(packed::NoInstance, B), packed::NoInstance);
  EXPECT_EQ(packed::increment(packed::AllInstances, B),
            packed::AllInstances);
}

TEST(PackedDistanceTest, CoversCommutesWithPack) {
  std::vector<DistanceValue> Vals = corpus();
  for (const DistanceValue &V : Vals)
    for (int64_t Delta : {0, 1, 2, 3, 99, 100, 101})
      EXPECT_EQ(V.covers(Delta), packed::covers(packed::pack(V), Delta))
          << V.toString() << " delta " << Delta;
}
