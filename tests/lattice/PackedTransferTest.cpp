//===- tests/lattice/PackedTransferTest.cpp - Closure algebra oracle -----===//
//
// The scalar specification the summary engine's row sweeps rest on:
// every constructor of the three-parameter transfer family must denote
// the packed flow function it claims, and composition and the
// equal-shift meets must agree with evaluating the operands pointwise
// -- over every boundary value of the chain, for saturating and
// non-saturating increment bounds, exhaustively.
//
//===----------------------------------------------------------------------===//

#include "lattice/PackedTransfer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ardf;
using namespace ardf::packed;

namespace {

/// Chain boundary values: the sentinels, the generate constant, small
/// finite distances, and values straddling the saturation bounds below.
const PackedDistance Values[] = {
    NoInstance, Zero,          finite(1),  finite(2),  finite(3),
    finite(4),  finite(5),     finite(98), finite(99), finite(100),
    finite(999), finite(1000), AllInstances,
};

/// A saturating-small bound, the bench family's bound, and unbounded.
const uint64_t Bounds[] = {incrementBound(2), incrementBound(5),
                           incrementBound(1000),
                           incrementBound(UnknownTripCount)};

/// Clamp constants for building transfer pairs: a trimmed boundary set
/// so the quadratic compose/meet sweeps stay fast while still crossing
/// the sentinels with finite values on both sides of every bound.
const PackedDistance ClampValues[] = {
    NoInstance, Zero, finite(1), finite(4), finite(99), finite(1000),
    AllInstances,
};

/// Every canonical transfer over the clamp constants with shifts 0..2.
std::vector<Transfer> canonicalTransfers() {
  std::vector<Transfer> Ts;
  for (uint32_t Shift : {0u, 1u, 2u})
    for (PackedDistance Floor : ClampValues)
      for (PackedDistance Cap : ClampValues)
        Ts.push_back(canonicalTransfer(Transfer{Shift, Floor, Cap}));
  return Ts;
}

} // namespace

TEST(PackedTransferTest, IdentityAndCanonicalization) {
  for (uint64_t Bound : Bounds)
    for (PackedDistance X : Values)
      EXPECT_EQ(applyTransfer(identityTransfer(), X, Bound), X);

  // Canonicalization never changes the denoted function.
  for (uint32_t Shift : {0u, 1u})
    for (PackedDistance Floor : Values)
      for (PackedDistance Cap : Values) {
        Transfer Raw{Shift, Floor, Cap};
        Transfer Canon = canonicalTransfer(Raw);
        EXPECT_LE(Canon.Floor, Canon.Cap);
        for (uint64_t Bound : Bounds)
          for (PackedDistance X : Values)
            EXPECT_EQ(applyTransfer(Canon, X, Bound),
                      applyTransfer(Raw, X, Bound));
      }
}

TEST(PackedTransferTest, ConstructorsDenoteKernelFunctions) {
  for (uint64_t Bound : Bounds)
    for (PackedDistance X : Values) {
      for (PackedDistance P : Values)
        EXPECT_EQ(applyTransfer(preserveTransfer(P), X, Bound),
                  meetMust(X, P));
      // The generating cell's per-pass effect: dense preserve min then
      // the sparse patch, exactly as the kernel applies them in order.
      for (PackedDistance Pre : Values)
        for (PackedDistance Q : Values)
          EXPECT_EQ(applyTransfer(generateTransfer(Pre, Q), X, Bound),
                    meetMust(meetMay(meetMust(X, Pre), Zero), Q))
              << "Pre=" << Pre << " Q=" << Q << " X=" << X;
      EXPECT_EQ(applyTransfer(incrementTransfer(), X, Bound),
                increment(X, Bound));
    }
}

TEST(PackedTransferTest, ComposeAgreesWithSequentialApplication) {
  std::vector<Transfer> Ts = canonicalTransfers();
  for (uint64_t Bound : Bounds)
    for (const Transfer &F1 : Ts)
      for (const Transfer &F2 : Ts) {
        Transfer C = composeTransfer(F2, F1, Bound);
        EXPECT_LE(C.Floor, C.Cap);
        for (PackedDistance X : Values)
          EXPECT_EQ(applyTransfer(C, X, Bound),
                    applyTransfer(F2, applyTransfer(F1, X, Bound), Bound))
              << "F1={" << F1.Shift << "," << F1.Floor << "," << F1.Cap
              << "} F2={" << F2.Shift << "," << F2.Floor << "," << F2.Cap
              << "} X=" << X << " Bound=" << Bound;
      }
}

TEST(PackedTransferTest, MeetsAgreeWithPointwiseMeets) {
  std::vector<Transfer> Ts = canonicalTransfers();
  for (uint64_t Bound : Bounds)
    for (const Transfer &A : Ts)
      for (const Transfer &B : Ts) {
        if (A.Shift != B.Shift)
          continue;
        Transfer Must = meetTransferMust(A, B);
        Transfer May = meetTransferMay(A, B);
        for (PackedDistance X : Values) {
          PackedDistance FA = applyTransfer(A, X, Bound);
          PackedDistance FB = applyTransfer(B, X, Bound);
          EXPECT_EQ(applyTransfer(Must, X, Bound), meetMust(FA, FB));
          EXPECT_EQ(applyTransfer(May, X, Bound), meetMay(FA, FB));
        }
      }
}

TEST(PackedTransferTest, ShiftSaturatesLikeRepeatedIncrement) {
  for (uint64_t Bound : Bounds)
    for (PackedDistance X : Values) {
      PackedDistance Manual = X;
      for (uint32_t N = 0; N != 6; ++N) {
        EXPECT_EQ(shiftN(X, N, Bound), Manual);
        Manual = increment(Manual, Bound);
      }
    }
}
