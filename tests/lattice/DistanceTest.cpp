//===- tests/lattice/DistanceTest.cpp - Chain lattice laws ---------------===//

#include "lattice/Distance.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ardf;

namespace {

std::vector<DistanceValue> sampleChain() {
  return {DistanceValue::noInstance(), DistanceValue::finite(0),
          DistanceValue::finite(1), DistanceValue::finite(2),
          DistanceValue::finite(7), DistanceValue::allInstances()};
}

} // namespace

TEST(DistanceTest, ChainOrder) {
  std::vector<DistanceValue> Chain = sampleChain();
  for (size_t I = 0; I < Chain.size(); ++I)
    for (size_t J = 0; J < Chain.size(); ++J) {
      EXPECT_EQ(Chain[I] < Chain[J], I < J);
      EXPECT_EQ(Chain[I] == Chain[J], I == J);
      EXPECT_EQ(Chain[I] <= Chain[J], I <= J);
    }
}

TEST(DistanceTest, MeetIsMinJoinIsMax) {
  DistanceValue Bot = DistanceValue::noInstance();
  DistanceValue Top = DistanceValue::allInstances();
  DistanceValue Two = DistanceValue::finite(2);
  // min(x, bottom) = bottom, min(x, top) = x -- the paper's meet laws.
  EXPECT_EQ(DistanceValue::min(Two, Bot), Bot);
  EXPECT_EQ(DistanceValue::min(Two, Top), Two);
  EXPECT_EQ(DistanceValue::max(Two, Bot), Two);
  EXPECT_EQ(DistanceValue::max(Two, Top), Top);
  EXPECT_EQ(DistanceValue::min(DistanceValue::finite(3), Two), Two);
}

TEST(DistanceTest, LatticeLawsProperty) {
  std::vector<DistanceValue> Chain = sampleChain();
  for (const DistanceValue &A : Chain) {
    // Idempotence.
    EXPECT_EQ(DistanceValue::min(A, A), A);
    EXPECT_EQ(DistanceValue::max(A, A), A);
    for (const DistanceValue &B : Chain) {
      // Commutativity.
      EXPECT_EQ(DistanceValue::min(A, B), DistanceValue::min(B, A));
      EXPECT_EQ(DistanceValue::max(A, B), DistanceValue::max(B, A));
      // Absorption.
      EXPECT_EQ(DistanceValue::min(A, DistanceValue::max(A, B)), A);
      EXPECT_EQ(DistanceValue::max(A, DistanceValue::min(A, B)), A);
      for (const DistanceValue &C : Chain) {
        // Associativity.
        EXPECT_EQ(
            DistanceValue::min(A, DistanceValue::min(B, C)),
            DistanceValue::min(DistanceValue::min(A, B), C));
      }
    }
  }
}

TEST(DistanceTest, IncrementBehavior) {
  EXPECT_TRUE(DistanceValue::noInstance().increment().isNoInstance());
  EXPECT_TRUE(DistanceValue::allInstances().increment().isAllInstances());
  EXPECT_EQ(DistanceValue::finite(3).increment(), DistanceValue::finite(4));
}

TEST(DistanceTest, IncrementSaturatesAtTripCount) {
  // With UB = 5, distance 4 == UB - 1 already denotes all instances.
  EXPECT_EQ(DistanceValue::finite(2).increment(5), DistanceValue::finite(3));
  EXPECT_TRUE(DistanceValue::finite(3).increment(5).isAllInstances());
  EXPECT_TRUE(DistanceValue::finite(100).increment(5).isAllInstances());
  // Unknown trip count never saturates.
  EXPECT_EQ(DistanceValue::finite(100).increment(UnknownTripCount),
            DistanceValue::finite(101));
}

TEST(DistanceTest, IncrementIsMonotoneProperty) {
  std::vector<DistanceValue> Chain = sampleChain();
  for (const DistanceValue &A : Chain)
    for (const DistanceValue &B : Chain)
      if (A <= B)
        EXPECT_LE(A.increment(10), B.increment(10));
}

TEST(DistanceTest, Covers) {
  EXPECT_TRUE(DistanceValue::allInstances().covers(1000));
  EXPECT_FALSE(DistanceValue::noInstance().covers(0));
  EXPECT_TRUE(DistanceValue::finite(2).covers(2));
  EXPECT_TRUE(DistanceValue::finite(2).covers(0));
  EXPECT_FALSE(DistanceValue::finite(2).covers(3));
}

TEST(DistanceTest, FiniteOrNone) {
  EXPECT_TRUE(DistanceValue::finiteOrNone(-1).isNoInstance());
  EXPECT_EQ(DistanceValue::finiteOrNone(0), DistanceValue::finite(0));
}

TEST(DistanceTest, ToString) {
  EXPECT_EQ(DistanceValue::noInstance().toString(), "_");
  EXPECT_EQ(DistanceValue::allInstances().toString(), "T");
  EXPECT_EQ(DistanceValue::finite(12).toString(), "12");
}
