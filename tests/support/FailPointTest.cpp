//===- tests/support/FailPointTest.cpp - Fault-injection harness ---------===//

#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <chrono>

using namespace ardf;
using namespace ardf::failpoint;

namespace {

/// Every test leaves the registry empty; a leaked arm would silently
/// poison unrelated suites in the same binary.
class FailPointTest : public ::testing::Test {
protected:
  void SetUp() override { disarmAll(); }
  void TearDown() override {
    disarmAll();
    EXPECT_FALSE(anyArmed());
  }
};

} // namespace

TEST_F(FailPointTest, UnarmedIsInert) {
  EXPECT_FALSE(anyArmed());
  EXPECT_EQ(evaluate("test.site"), Fired::No);
  EXPECT_EQ(firedCount("test.site"), 0u);
  EXPECT_FALSE(disarm("test.site"));
}

TEST_F(FailPointTest, ThrowFiresEveryEvaluation) {
  arm("test.site", Action::Throw);
  EXPECT_TRUE(anyArmed());
  for (int I = 0; I != 3; ++I) {
    try {
      evaluate("test.site");
      FAIL() << "failpoint did not throw";
    } catch (const FailPointError &E) {
      EXPECT_EQ(E.site(), "test.site");
      EXPECT_NE(std::string(E.what()).find("test.site"), std::string::npos);
    }
  }
  EXPECT_EQ(firedCount("test.site"), 3u);
  // Other sites are unaffected.
  EXPECT_EQ(evaluate("test.other"), Fired::No);
}

TEST_F(FailPointTest, OrdinalFiresExactlyOnce) {
  arm("test.site", Action::Breach, /*FireAt=*/3);
  EXPECT_EQ(evaluate("test.site"), Fired::No);
  EXPECT_EQ(evaluate("test.site"), Fired::No);
  EXPECT_EQ(evaluate("test.site"), Fired::Breach);
  EXPECT_EQ(evaluate("test.site"), Fired::No); // only the third
  EXPECT_EQ(firedCount("test.site"), 1u);
}

TEST_F(FailPointTest, BreachDoesNotThrow) {
  arm("test.site", Action::Breach);
  EXPECT_EQ(evaluate("test.site"), Fired::Breach);
  EXPECT_EQ(evaluate("test.site"), Fired::Breach);
  EXPECT_EQ(firedCount("test.site"), 2u);
}

TEST_F(FailPointTest, StallSleepsThenContinues) {
  arm("test.site", Action::Stall, /*FireAt=*/0, /*StallMs=*/30);
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(evaluate("test.site"), Fired::No);
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - Start);
  EXPECT_GE(Elapsed.count(), 25);
  EXPECT_EQ(firedCount("test.site"), 1u);
}

TEST_F(FailPointTest, RearmReplacesAndResetsCounters) {
  arm("test.site", Action::Breach);
  EXPECT_EQ(evaluate("test.site"), Fired::Breach);
  EXPECT_EQ(firedCount("test.site"), 1u);
  arm("test.site", Action::Breach, /*FireAt=*/2);
  EXPECT_EQ(firedCount("test.site"), 0u);
  EXPECT_EQ(evaluate("test.site"), Fired::No);
  EXPECT_EQ(evaluate("test.site"), Fired::Breach);
}

TEST_F(FailPointTest, DisarmStopsFiring) {
  arm("test.site", Action::Throw);
  EXPECT_TRUE(disarm("test.site"));
  EXPECT_FALSE(anyArmed());
  EXPECT_EQ(evaluate("test.site"), Fired::No);
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnExit) {
  {
    ScopedFailPoint FP("test.site", Action::Breach);
    EXPECT_EQ(evaluate("test.site"), Fired::Breach);
  }
  EXPECT_FALSE(anyArmed());
  EXPECT_EQ(evaluate("test.site"), Fired::No);
}

TEST_F(FailPointTest, SpecParsing) {
  EXPECT_TRUE(armFromSpec("a.b:throw"));
  EXPECT_TRUE(armFromSpec("c.d@3:breach,e.f:stall=10"));
  EXPECT_TRUE(anyArmed());
  EXPECT_THROW(evaluate("a.b"), FailPointError);
  EXPECT_EQ(evaluate("c.d"), Fired::No);
  EXPECT_EQ(evaluate("c.d"), Fired::No);
  EXPECT_EQ(evaluate("c.d"), Fired::Breach);
  EXPECT_EQ(evaluate("e.f"), Fired::No); // stall returns No
  EXPECT_EQ(firedCount("e.f"), 1u);
}

TEST_F(FailPointTest, MalformedSpecsRejectedWithReason) {
  for (const char *Bad : {"noaction", "a.b:", "a.b:explode", ":throw",
                          "a.b@:throw", "a.b@x:throw", "a.b:stall=",
                          "a.b:stall=x"}) {
    std::string Error;
    EXPECT_FALSE(armFromSpec(Bad, &Error)) << "'" << Bad << "'";
    EXPECT_FALSE(Error.empty()) << "'" << Bad << "'";
  }
  // Empty specs and empty entries (an unset env var, a trailing comma)
  // are accepted as no-ops: nothing gets armed.
  EXPECT_TRUE(armFromSpec(""));
  EXPECT_TRUE(armFromSpec(","));
  EXPECT_FALSE(anyArmed());
}
