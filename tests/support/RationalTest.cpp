//===- tests/support/RationalTest.cpp - Exact rational arithmetic --------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ardf;

TEST(RationalTest, Normalization) {
  Rational R(6, 4);
  EXPECT_EQ(R.numerator(), 3);
  EXPECT_EQ(R.denominator(), 2);
  Rational N(3, -6);
  EXPECT_EQ(N.numerator(), -1);
  EXPECT_EQ(N.denominator(), 2);
  Rational Z(0, -7);
  EXPECT_EQ(Z.numerator(), 0);
  EXPECT_EQ(Z.denominator(), 1);
}

TEST(RationalTest, IntegerPredicates) {
  EXPECT_TRUE(Rational(4, 2).isInteger());
  EXPECT_EQ(Rational(4, 2).asInteger(), 2);
  EXPECT_FALSE(Rational(1, 2).isInteger());
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
  EXPECT_EQ(Rational(-6, 2).floor(), -3);
  EXPECT_EQ(Rational(-6, 2).ceil(), -3);
  EXPECT_EQ(Rational(0).floor(), 0);
  EXPECT_EQ(Rational(0).ceil(), 0);
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(RationalTest, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_GE(Rational(5, 5), Rational(1));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(3, 2), Rational(1));
}

TEST(RationalTest, Printing) {
  std::ostringstream OS;
  OS << Rational(3, 2) << ' ' << Rational(4, 2);
  EXPECT_EQ(OS.str(), "3/2 2");
}

// Property-style sweep: floor/ceil bracket the value and agree on
// integers, for a grid of numerators and denominators.
TEST(RationalTest, FloorCeilBracketProperty) {
  for (int64_t N = -20; N <= 20; ++N) {
    for (int64_t D = 1; D <= 7; ++D) {
      Rational R(N, D);
      EXPECT_LE(Rational(R.floor()), R);
      EXPECT_GE(Rational(R.ceil()), R);
      EXPECT_LE(R.ceil() - R.floor(), 1);
      if (R.isInteger())
        EXPECT_EQ(R.floor(), R.ceil());
      else
        EXPECT_EQ(R.ceil(), R.floor() + 1);
    }
  }
}
