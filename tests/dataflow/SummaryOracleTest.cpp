//===- tests/dataflow/SummaryOracleTest.cpp - Summary vs reference oracle -===//
//
// The summary engine's bit-identity guarantee: over the randomized
// corpus and the boundary shapes, under every dispatch tier the host
// can execute, Engine::Summary must produce SolveResults bit-identical
// to the Reference engine -- matrices and counters -- for all paper
// problems and both pass strategies (the fixpoint strategy exercising
// the kernel fallback path), on narrowed and wide cell programs alike.
// The behavioral contract (budgets, failpoints, memoization) lives in
// FlowSummaryTest.cpp; the CI matrix re-runs this binary once per tier
// via ARDF_FORCE_ISA.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "dataflow/CompiledFlow.h"
#include "dataflow/FlowSummary.h"
#include "dataflow/VectorOps.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;
using simd::Isa;

namespace {

ProblemSpec allSpecs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
    ProblemSpec::reachingReferences(),
    ProblemSpec::availableValuesPerOccurrence(),
    ProblemSpec::busyStoresPerOccurrence(),
};

const char *HandCorpus[] = {
    "do i = 1, 100 { A[i+2] = A[i] + X; }",
    "do i = 1, 5 { A[i+1] = A[i]; }",
    // Symbolic trip count: the increment bound saturates only at
    // AllInstances.
    "do i = 1, N { A[i+1] = A[i] + A[i-1]; }",
    "do i = 1, 50 { if (B[i] > 0) { A[i+1] = B[i]; } else { A[i+1] = 0; } "
    "C[i] = A[i] + B[i-2]; }",
    // Degenerate single-statement body: the back-edge node is as close
    // to the source as the graph allows.
    "do i = 1, 10 { X = X + 1; }",
    // A trip count past the narrowing limit forces wide uint64 cells.
    "do i = 1, 5000000000 { A[i+1] = A[i]; B[i] = A[i-2]; }",
};

std::vector<Isa> supportedTiers() {
  std::vector<Isa> Tiers;
  for (Isa T : {Isa::Scalar, Isa::NEON, Isa::AVX2, Isa::AVX512})
    if (simd::isaSupported(T))
      Tiers.push_back(T);
  return Tiers;
}

/// Pins the dispatch tier for one scope and restores the previous one.
class IsaScope {
public:
  explicit IsaScope(Isa Tier) : Prev(simd::activeIsa()) {
    EXPECT_TRUE(simd::setActiveIsaForTesting(Tier));
  }
  ~IsaScope() { simd::setActiveIsaForTesting(Prev); }

private:
  Isa Prev;
};

/// Solves \p Spec with the Reference engine and through Engine::Summary
/// under the active tier, asserting bit-identity throughout.
void expectSummaryAgrees(const std::string &Source, const ProblemSpec &Spec,
                         SolverOptions Opts) {
  Program P = parseOrDie(Source);
  const DoLoopStmt *Loop = P.getFirstLoop();
  ASSERT_NE(Loop, nullptr) << Source;
  LoopFlowGraph Graph(*Loop);
  FrameworkInstance FW(Graph, P, Spec);

  Opts.Eng = SolverOptions::Engine::Reference;
  SolveResult Ref = solveDataFlow(FW, Opts);
  SolverOptions Sum = Opts;
  Sum.Eng = SolverOptions::Engine::Summary;
  SolveResult App = solveDataFlow(FW, Sum);

  const char *Tier = simd::isaName(simd::activeIsa());
  EXPECT_EQ(App.In, Ref.In) << Spec.Name << " tier=" << Tier;
  EXPECT_EQ(App.Out, Ref.Out) << Spec.Name << " tier=" << Tier;
  EXPECT_EQ(App.NodeVisits, Ref.NodeVisits) << Spec.Name;
  EXPECT_EQ(App.Passes, Ref.Passes) << Spec.Name;
  EXPECT_EQ(App.MeetOps, Ref.MeetOps) << Spec.Name;
  EXPECT_EQ(App.ApplyOps, Ref.ApplyOps) << Spec.Name;
  EXPECT_EQ(App.Converged, Ref.Converged) << Spec.Name;
}

} // namespace

TEST(SummaryOracleTest, HandCorpusCoversBothCellWidths) {
  // The corpus must actually exercise the narrowed and the wide storage
  // paths, and every shape must lower to a valid summary.
  bool SawNarrow = false, SawWide = false;
  for (const char *Source : HandCorpus) {
    Program P = parseOrDie(Source);
    LoopFlowGraph Graph(*P.getFirstLoop());
    FrameworkInstance FW(Graph, P, ProblemSpec::mustReachingDefs());
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
    FlowSummary S = FlowSummary::lower(CF);
    EXPECT_TRUE(S.Valid) << Source;
    EXPECT_EQ(S.Narrow32, CF.Narrow32);
    (CF.Narrow32 ? SawNarrow : SawWide) = true;
  }
  EXPECT_TRUE(SawNarrow);
  EXPECT_TRUE(SawWide);
}

TEST(SummaryOracleTest, HandCorpusEveryTier) {
  for (Isa Tier : supportedTiers()) {
    IsaScope Scope(Tier);
    for (const char *Source : HandCorpus)
      for (const ProblemSpec &Spec : allSpecs)
        expectSummaryAgrees(Source, Spec, SolverOptions());
  }
}

TEST(SummaryOracleTest, RandomizedCorpusPaperScheduleEveryTier) {
  for (Isa Tier : supportedTiers()) {
    IsaScope Scope(Tier);
    for (unsigned Stmts : {4u, 17u, 33u})
      for (int Cond : {0, 40})
        for (uint64_t Seed : {1u, 2u}) {
          std::string Source = ardfbench::makeSyntheticLoop(
              Stmts, 4, Cond, Seed * 7919 + Stmts * 31 + Cond, 1000);
          for (const ProblemSpec &Spec : allSpecs)
            expectSummaryAgrees(Source, Spec, SolverOptions());
        }
  }
}

TEST(SummaryOracleTest, RandomizedCorpusIterateToFixpointFallsBack) {
  // Engine::Summary with the fixpoint strategy must still be exact --
  // it routes through the kernel (summaryEligible is false), and the
  // result must match the reference fixpoint run bit for bit.
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  for (Isa Tier : supportedTiers()) {
    IsaScope Scope(Tier);
    for (unsigned Stmts : {6u, 21u}) {
      std::string Source =
          ardfbench::makeSyntheticLoop(Stmts, 3, 30, 131u + Stmts, 500);
      for (const ProblemSpec &Spec : allSpecs)
        expectSummaryAgrees(Source, Spec, Opts);
    }
  }
}
