//===- tests/dataflow/SolveAllocationTest.cpp - Zero-alloc solves --------===//
//
// Lives in its own test binary (alloc_tests): the global operator
// new/delete overrides below count every heap allocation in the
// process, which would add noise to unrelated suites.
//
//===----------------------------------------------------------------------===//

#include "dataflow/CompiledFlow.h"
#include "dataflow/Framework.h"
#include "frontend/Parser.h"
#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<size_t> GAllocCount{0};

size_t allocCount() { return GAllocCount.load(std::memory_order_relaxed); }

void *countedAlloc(size_t Size) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

} // namespace

void *operator new(size_t Size) { return countedAlloc(Size); }
void *operator new[](size_t Size) { return countedAlloc(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }

using namespace ardf;

namespace {

struct Built {
  Program Prog;
  std::unique_ptr<LoopFlowGraph> Graph;
  std::unique_ptr<FrameworkInstance> FW;
};

Built build(const char *Source, ProblemSpec Spec) {
  Built B{parseOrDie(Source), nullptr, nullptr};
  const DoLoopStmt *Loop = B.Prog.getFirstLoop();
  EXPECT_NE(Loop, nullptr);
  B.Graph = std::make_unique<LoopFlowGraph>(*Loop);
  B.FW = std::make_unique<FrameworkInstance>(*B.Graph, B.Prog, Spec);
  return B;
}

const char *Source =
    "do i = 1, 100 { A[i] = B[i] + B[i-1]; if (A[i-2] > 5) { B[i+3] = "
    "A[i-1]; } C[i] = A[i] + B[i-2]; }";

/// Repeated solves through a warmed-up workspace must not touch the
/// heap at all: the acceptance criterion of the flat-storage rework.
void expectAllocationFreeSolves(ProblemSpec Spec, SolverOptions Opts) {
  Built B = build(Source, Spec);
  SolveWorkspace WS;
  solveDataFlow(*B.FW, WS, Opts); // warm-up: matrices grow here
  size_t Before = allocCount();
  for (int I = 0; I != 10; ++I)
    solveDataFlow(*B.FW, WS, Opts);
  EXPECT_EQ(allocCount() - Before, 0u) << Spec.Name;
  EXPECT_EQ(WS.matrixGrowths(), 1u) << Spec.Name;
  EXPECT_EQ(WS.solves(), 11u) << Spec.Name;
}

/// Same invariant for the packed kernel engine: with the flow program
/// compiled up front, warm repeated kernel solves (packed buffers and
/// unpacked result matrices both recycled) must be allocation-free.
void expectAllocationFreeKernelSolves(ProblemSpec Spec, SolverOptions Opts) {
  Built B = build(Source, Spec);
  CompiledFlowProgram CF = CompiledFlowProgram::compile(*B.FW);
  SolveWorkspace WS;
  solveCompiled(CF, WS, Opts); // warm-up: matrices and buffers grow here
  size_t Before = allocCount();
  for (int I = 0; I != 10; ++I)
    solveCompiled(CF, WS, Opts);
  EXPECT_EQ(allocCount() - Before, 0u) << Spec.Name;
  EXPECT_EQ(WS.matrixGrowths(), 1u) << Spec.Name;
  EXPECT_EQ(WS.solves(), 11u) << Spec.Name;
}

} // namespace

TEST(SolveAllocationTest, SanityCounterCounts) {
  size_t Before = allocCount();
  std::vector<int> *V = new std::vector<int>(1024, 7);
  EXPECT_GT(allocCount(), Before);
  delete V;
}

TEST(SolveAllocationTest, MustForwardSolvesAllocationFree) {
  expectAllocationFreeSolves(ProblemSpec::mustReachingDefs(),
                             SolverOptions());
  expectAllocationFreeSolves(ProblemSpec::availableValues(),
                             SolverOptions());
}

TEST(SolveAllocationTest, BackwardAndMaySolvesAllocationFree) {
  expectAllocationFreeSolves(ProblemSpec::busyStores(), SolverOptions());
  expectAllocationFreeSolves(ProblemSpec::reachingReferences(),
                             SolverOptions());
}

TEST(SolveAllocationTest, FixpointStrategyAllocationFree) {
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  expectAllocationFreeSolves(ProblemSpec::availableValues(), Opts);
}

TEST(SolveAllocationTest, PackedKernelSolvesAllocationFree) {
  for (const ProblemSpec &Spec :
       {ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
        ProblemSpec::busyStores(), ProblemSpec::reachingReferences()})
    expectAllocationFreeKernelSolves(Spec, SolverOptions());
}

TEST(SolveAllocationTest, PackedKernelFixpointAllocationFree) {
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  expectAllocationFreeKernelSolves(ProblemSpec::availableValues(), Opts);
  expectAllocationFreeKernelSolves(ProblemSpec::busyStores(), Opts);
}

/// The robustness layer's zero-overhead-off contract: an enabled (but
/// never breached) budget and the unarmed failpoint sites must keep
/// warm solves allocation-free on both engines -- the budget guard is a
/// handful of stack-resident integers, and an unarmed failpoint
/// evaluation is one relaxed atomic load.
TEST(SolveAllocationTest, ArmedButUnhitBudgetAllocationFree) {
  ASSERT_FALSE(failpoint::anyArmed());
  SolverOptions Opts;
  Opts.Budget.VisitSlack = 4.0;        // generous: never breached
  Opts.Budget.MaxNodeVisits = 1u << 30;
  Opts.Budget.MaxMatrixCells = 1u << 30;
  expectAllocationFreeSolves(ProblemSpec::mustReachingDefs(), Opts);
  expectAllocationFreeSolves(ProblemSpec::reachingReferences(), Opts);
  expectAllocationFreeKernelSolves(ProblemSpec::mustReachingDefs(), Opts);
  expectAllocationFreeKernelSolves(ProblemSpec::reachingReferences(), Opts);
}

/// Degraded solves stay allocation-free too once the workspace is warm:
/// the conservative fill writes into the recycled matrices.
TEST(SolveAllocationTest, DegradedSolvesAllocationFree) {
  SolverOptions Opts;
  Opts.Budget.MaxNodeVisits = 1;
  expectAllocationFreeSolves(ProblemSpec::mustReachingDefs(), Opts);
  expectAllocationFreeKernelSolves(ProblemSpec::reachingReferences(), Opts);
}

/// The provenance contract's off switch: recording allocates (the
/// derivation cells have to live somewhere), but with RecordProvenance
/// unset warm solves stay allocation-free even right after a recording
/// solve used the same workspace -- dropping the previous recording is
/// a shared_ptr release, not an allocation.
TEST(SolveAllocationTest, ProvenanceOffKeepsWarmSolvesAllocationFree) {
  Built B = build(Source, ProblemSpec::mustReachingDefs());
  SolveWorkspace WS;
  SolverOptions Prov;
  Prov.RecordProvenance = true;
  solveDataFlow(*B.FW, WS, Prov); // recording solve: allocations expected
  solveDataFlow(*B.FW, WS, SolverOptions()); // warm-up, drops recording
  size_t Before = allocCount();
  for (int I = 0; I != 10; ++I)
    solveDataFlow(*B.FW, WS, SolverOptions());
  EXPECT_EQ(allocCount() - Before, 0u);
}

/// The telemetry contract's middle tier: counters-only telemetry (a
/// context installed, no sink) must keep warm solves allocation-free on
/// both engines -- counter bumps are relaxed atomic adds, and spans
/// without a sink never build events.
TEST(SolveAllocationTest, CountersOnlyTelemetryAllocationFree) {
  telem::Telemetry T;
  telem::TelemetryScope Scope(T);
  expectAllocationFreeSolves(ProblemSpec::availableValues(),
                             SolverOptions());
  expectAllocationFreeKernelSolves(ProblemSpec::busyStores(),
                                   SolverOptions());
  EXPECT_GT(T.get(telem::Counter::SolverNodeVisits), 0u);
  EXPECT_EQ(T.get(telem::Counter::SolverRunsReference), 11u);
  EXPECT_EQ(T.get(telem::Counter::SolverRunsPacked), 11u);
}
