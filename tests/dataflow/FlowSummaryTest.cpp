//===- tests/dataflow/FlowSummaryTest.cpp - Summary engine contract ------===//
//
// The summary engine's behavioral contract beyond raw bit-identity
// (SummaryOracleTest owns the corpus sweep): budget and failpoint
// degradation at exactly the kernel's pass boundaries, fallback for
// request shapes a summary cannot serve, session memoization with its
// cache stats and telemetry counters, and allocation-stable warm
// workspace applications.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopAnalysisSession.h"
#include "dataflow/CompiledFlow.h"
#include "dataflow/FlowSummary.h"
#include "frontend/Parser.h"
#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

const char *Fig1 = "array A[100]; array B[200]; array C[102];\n"
                   "do i = 1, 100 {\n"
                   "  C[i+2] = C[i] * 2;\n"
                   "  B[2*i] = C[i] + X;\n"
                   "  if (C[i] == 0) { C[i] = B[i-1]; }\n"
                   "  B[i] = C[i+1];\n"
                   "}\n";

ProblemSpec allSpecs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
    ProblemSpec::reachingReferences(),
};

/// Every result field the engines promise to agree on.
void expectSameResult(const SolveResult &A, const SolveResult &B,
                      const char *Label) {
  EXPECT_EQ(A.In, B.In) << Label;
  EXPECT_EQ(A.Out, B.Out) << Label;
  EXPECT_EQ(A.NodeVisits, B.NodeVisits) << Label;
  EXPECT_EQ(A.Passes, B.Passes) << Label;
  EXPECT_EQ(A.MeetOps, B.MeetOps) << Label;
  EXPECT_EQ(A.ApplyOps, B.ApplyOps) << Label;
  EXPECT_EQ(A.Converged, B.Converged) << Label;
  EXPECT_EQ(A.Outcome, B.Outcome) << Label;
  EXPECT_EQ(A.Breach, B.Breach) << Label;
}

class FlowSummaryTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::disarmAll(); }
  void TearDown() override { failpoint::disarmAll(); }
};

} // namespace

TEST_F(FlowSummaryTest, ApplyMatchesKernelSolve) {
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
    FlowSummary S = FlowSummary::lower(CF);
    ASSERT_TRUE(S.Valid) << Spec.Name;
    expectSameResult(applySummary(S), solveCompiled(CF), Spec.Name);
  }
}

TEST_F(FlowSummaryTest, SummaryEngineMatchesReferenceThroughSolveDataFlow) {
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    SolverOptions Ref;
    Ref.Eng = SolverOptions::Engine::Reference;
    SolverOptions Sum;
    Sum.Eng = SolverOptions::Engine::Summary;
    expectSameResult(solveDataFlow(FW, Sum), solveDataFlow(FW, Ref),
                     Spec.Name);
  }
}

TEST_F(FlowSummaryTest, BudgetBreachesDegradeAtKernelBoundaries) {
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  // A cells cap (breached before any boundary), a visits cap breached
  // right after initialization, and an undersized slack breached
  // mid-schedule: each must freeze the summary application exactly
  // where it freezes the kernel, counters included.
  SolverOptions CellsCap;
  CellsCap.Budget.MaxMatrixCells = 2;
  SolverOptions VisitCap;
  VisitCap.Budget.MaxNodeVisits = 1;
  SolverOptions TightSlack;
  TightSlack.Budget.VisitSlack = 0.5;
  for (const SolverOptions &Base : {CellsCap, VisitCap, TightSlack})
    for (const ProblemSpec &Spec :
         {ProblemSpec::mustReachingDefs(), ProblemSpec::reachingReferences()}) {
      FrameworkInstance FW(Graph, P, Spec);
      CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
      FlowSummary S = FlowSummary::lower(CF);
      ASSERT_TRUE(S.Valid);
      SolveResult Kern = solveCompiled(CF, Base);
      SolveResult Sum = applySummary(S, Base);
      EXPECT_EQ(Kern.Outcome, SolveOutcome::Degraded) << Spec.Name;
      expectSameResult(Sum, Kern, Spec.Name);
    }
}

TEST_F(FlowSummaryTest, FailpointBreachParityAtEveryBoundary) {
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  // The guard consults "solver.pass" once per boundary (three per
  // solve). Firing it at each ordinal must degrade summary and kernel
  // identically -- same frozen counters, same conservative fill.
  for (uint64_t FireAt : {1u, 2u, 3u})
    for (const ProblemSpec &Spec :
         {ProblemSpec::mustReachingDefs(), ProblemSpec::reachingReferences()}) {
      FrameworkInstance FW(Graph, P, Spec);
      CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
      FlowSummary S = FlowSummary::lower(CF);
      ASSERT_TRUE(S.Valid);
      SolveResult Kern = [&] {
        failpoint::ScopedFailPoint FP("solver.pass",
                                      failpoint::Action::Breach, FireAt);
        return solveCompiled(CF);
      }();
      SolveResult Sum = [&] {
        failpoint::ScopedFailPoint FP("solver.pass",
                                      failpoint::Action::Breach, FireAt);
        return applySummary(S);
      }();
      EXPECT_EQ(Kern.Outcome, SolveOutcome::Degraded)
          << Spec.Name << " fire_at=" << FireAt;
      EXPECT_EQ(Kern.Breach, BreachReason::FaultInjected);
      expectSameResult(Sum, Kern, Spec.Name);
    }
}

TEST_F(FlowSummaryTest, IneligibleRequestsFallBackToKernel) {
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  const ProblemSpec Spec = ProblemSpec::mustReachingDefs();
  FrameworkInstance FW(Graph, P, Spec);

  // Fixpoint iteration wants per-pass change tracking.
  SolverOptions Fix;
  Fix.Strat = SolverOptions::Strategy::IterateToFixpoint;
  EXPECT_FALSE(summaryEligible(Fix));
  SolverOptions FixSum = Fix;
  FixSum.Eng = SolverOptions::Engine::Summary;
  SolverOptions FixRef = Fix;
  FixRef.Eng = SolverOptions::Engine::Reference;
  expectSameResult(solveDataFlow(FW, FixSum), solveDataFlow(FW, FixRef),
                   "fixpoint fallback");

  // History snapshots need the passes to actually run.
  SolverOptions Hist;
  Hist.RecordHistory = true;
  EXPECT_FALSE(summaryEligible(Hist));
  SolverOptions HistSum = Hist;
  HistSum.Eng = SolverOptions::Engine::Summary;
  SolverOptions HistKern = Hist;
  HistKern.Eng = SolverOptions::Engine::PackedKernel;
  SolveResult A = solveDataFlow(FW, HistSum);
  SolveResult B = solveDataFlow(FW, HistKern);
  expectSameResult(A, B, "history fallback");
  ASSERT_FALSE(A.History.empty());
  EXPECT_EQ(A.History.size(), B.History.size());
}

TEST_F(FlowSummaryTest, SessionMemoizesOneSummaryPerInstance) {
  telem::Telemetry Telem;
  telem::TelemetryScope Scope(Telem);
  Program P = parseOrDie(Fig1);
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  const ProblemSpec Spec = ProblemSpec::availableValues();

  const FlowSummary &First = Session.flowSummary(Spec);
  const FlowSummary &Again = Session.flowSummary(Spec);
  EXPECT_EQ(&First, &Again);
  EXPECT_EQ(Session.cacheStats().SummaryMisses, 1u);
  EXPECT_EQ(Session.cacheStats().SummaryHits, 1u);
  EXPECT_EQ(Telem.get(telem::Counter::SummaryLowerings), 1u);
  EXPECT_EQ(Telem.get(telem::Counter::SummaryCacheHits), 1u);

  // Distinct budgets are distinct solution-cache entries, but the
  // summary itself is budget-independent: re-solving under a new budget
  // re-applies the memoized summary instead of re-lowering.
  SolverOptions SumOpts;
  SumOpts.Eng = SolverOptions::Engine::Summary;
  const SolveResult &Plain = Session.solve(Spec, SumOpts);
  SolverOptions Budgeted = SumOpts;
  Budgeted.Budget.VisitSlack = 4.0;
  const SolveResult &UnderBudget = Session.solve(Spec, Budgeted);
  EXPECT_NE(&Plain, &UnderBudget);
  EXPECT_EQ(Plain.In, UnderBudget.In);
  EXPECT_EQ(Session.cacheStats().SummaryMisses, 1u);
  EXPECT_EQ(Telem.get(telem::Counter::SummaryLowerings), 1u);
  EXPECT_EQ(Telem.get(telem::Counter::SummaryApplies), 2u);
}

TEST_F(FlowSummaryTest, WarmSkipSurvivesBreachesAndForeignWriters) {
  // The warm-skip token: a repeated apply of the same summary leaves
  // the export bytes in place, but any interleaved writer -- a
  // degraded apply, a different summary, a kernel solve -- must force
  // a full re-export, never serve stale bytes.
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  const ProblemSpec Spec = ProblemSpec::mustReachingDefs();
  FrameworkInstance FW(Graph, P, Spec);
  CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
  FlowSummary S = FlowSummary::lower(CF);
  ASSERT_TRUE(S.Valid);
  SolveResult Expect = applySummary(S);

  SolveWorkspace WS;
  expectSameResult(applySummary(S, WS), Expect, "cold");
  expectSameResult(applySummary(S, WS), Expect, "warm skip");

  // A budget breach overwrites the matrices with the degraded fill;
  // the next unbudgeted apply must notice and re-export.
  SolverOptions Starved;
  Starved.Budget.MaxNodeVisits = 1;
  EXPECT_EQ(applySummary(S, WS, Starved).Outcome, SolveOutcome::Degraded);
  expectSameResult(applySummary(S, WS), Expect, "re-export after breach");

  // A different summary of the same shape rewrites the matrices; both
  // directions of the alternation must re-export.
  FrameworkInstance FW2(Graph, P, ProblemSpec::availableValues());
  FlowSummary S2 = FlowSummary::lower(CompiledFlowProgram::compile(FW2));
  ASSERT_TRUE(S2.Valid);
  SolveResult Expect2 = applySummary(S2);
  expectSameResult(applySummary(S2, WS), Expect2, "other summary");
  expectSameResult(applySummary(S, WS), Expect, "back to first");

  // A kernel solve through the same workspace invalidates the token
  // (of a different problem, so stale bytes would be visible).
  solveCompiled(CompiledFlowProgram::compile(FW2), WS);
  expectSameResult(applySummary(S, WS), Expect, "after kernel solve");
}

TEST_F(FlowSummaryTest, WarmWorkspaceApplicationsDoNotRegrow) {
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, ProblemSpec::mustReachingDefs());
  CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
  FlowSummary S = FlowSummary::lower(CF);
  ASSERT_TRUE(S.Valid);
  SolveWorkspace WS;
  const SolveResult &Cold = applySummary(S, WS);
  EXPECT_EQ(WS.solves(), 1u);
  unsigned ColdGrowths = WS.matrixGrowths();
  SolveResult Expect = Cold; // copy before the workspace is reused
  const SolveResult &Warm = applySummary(S, WS);
  EXPECT_EQ(WS.solves(), 2u);
  EXPECT_EQ(WS.matrixGrowths(), ColdGrowths)
      << "warm apply must not reallocate";
  expectSameResult(Warm, Expect, "warm vs cold");
}
