//===- tests/dataflow/CustomSpecTest.cpp - User-defined instances --------===//
//
// The framework is parameterized by (G, K, mode, direction); the paper
// names four instances but explicitly allows others (live variable
// analysis is its example of a backward may-problem, Section 3.4).
// These tests define custom instances — notably the may+backward
// quadrant no predefined problem covers — and check their solutions.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

/// Live array values: a backward may-problem. A definition's value is
/// live at p with distance delta when some path forward from p reaches
/// a use of the element within delta iterations before any overwrite —
/// the array analogue of classic live variables.
ProblemSpec liveArrayValues() {
  return {"live-array-values", ProblemMode::May, FlowDirection::Backward,
          RefSelector::Uses, RefSelector::Defs, false};
}

int trackedNamed(const FrameworkInstance &FW, const std::string &Text) {
  for (unsigned I = 0; I != FW.getNumTracked(); ++I)
    if (exprToString(*FW.getTracked(I).Ref) == Text)
      return I;
  return -1;
}

} // namespace

TEST(CustomSpecTest, LiveArrayValuesBasic) {
  // The use A[i] keeps last iteration's A[i+1] store live.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i+1] = B[i];
      y = A[i];
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), liveArrayValues());
  int UseIdx = trackedNamed(DF.framework(), "A[i]");
  ASSERT_GE(UseIdx, 0);
  // At the def's node (backward IN = node exit), the use instance one
  // iteration ahead is visible: the value being stored WILL be read.
  unsigned DefNode = 0;
  for (const RefOccurrence &Occ : DF.universe().occurrences())
    if (Occ.IsDef && Occ.arrayName() == "A")
      DefNode = Occ.Node;
  EXPECT_TRUE(DF.valueAt(DefNode, UseIdx).covers(1));
}

TEST(CustomSpecTest, OverwriteKillsLiveness) {
  // A[i] is rewritten before the next iteration's use can read the old
  // value: the use of A[i-2] looks two iterations back, but A[i]
  // redefines each cell one iteration after the def A[i+1] wrote it...
  // concretely: the def A[i+1]'s value dies at A[i] of the NEXT
  // iteration, before A[i-2] (three iterations later) reads the cell.
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      A[i+1] = B[i];
      A[i] = 0;
      y = A[i-2];
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), liveArrayValues());
  const FrameworkInstance &FW = DF.framework();
  int UseIdx = trackedNamed(FW, "A[i - 2]");
  ASSERT_GE(UseIdx, 0);
  // The killer def A[i] caps the backward-propagated use liveness: at
  // the first def's node the use instance would need to survive the
  // A[i] overwrite in between.
  unsigned FirstDefNode = 0;
  bool Found = false;
  for (const RefOccurrence &Occ : DF.universe().occurrences())
    if (!Found && Occ.IsDef && exprToString(*Occ.Ref) == "A[i + 1]") {
      FirstDefNode = Occ.Node;
      Found = true;
    }
  ASSERT_TRUE(Found);
  // k for the use (a=1, b=-2) against killer A[i] (a=1, b=0), backward:
  // (0*i + 0-(-2))/1 = 2: instances beyond distance 1 may be stale, but
  // a MAY problem only trusts definite kills -- the cap is distance 1.
  DistanceValue AtDef = DF.valueAt(FirstDefNode, UseIdx);
  EXPECT_TRUE(AtDef.covers(1));
  EXPECT_FALSE(AtDef.covers(2));
}

TEST(CustomSpecTest, MayBackwardUsesTwoPasses) {
  Program P = parseOrDie("do i = 1, 100 { A[i+1] = A[i]; y = A[i-1]; }");
  LoopDataFlow DF(P, *P.getFirstLoop(), liveArrayValues());
  EXPECT_EQ(DF.result().NodeVisits, 2 * DF.graph().getNumNodes());
  // And the schedule already reached the fixed point.
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  SolveResult Stable = solveDataFlow(DF.framework(), Opts);
  ASSERT_TRUE(Stable.Converged);
  EXPECT_EQ(Stable.In, DF.result().In);
}

TEST(CustomSpecTest, MustBackwardUsesGrouping) {
  // Grouped custom spec in the must+backward quadrant: "anticipated
  // loads" — the same element is definitely read again soon, textually
  // grouped like busy stores.
  ProblemSpec AnticipatedLoads{"anticipated-loads", ProblemMode::Must,
                               FlowDirection::Backward, RefSelector::Uses,
                               RefSelector::Defs, true};
  Program P = parseOrDie(R"(
    do i = 1, 100 {
      x = A[i] + 1;
      y = A[i] * 2;
    })");
  LoopDataFlow DF(P, *P.getFirstLoop(), AnticipatedLoads);
  // Both A[i] uses share one tuple element.
  EXPECT_EQ(DF.framework().getNumTracked(), 1u);
  EXPECT_EQ(DF.framework().trackedMembers(0).size(), 2u);
}
