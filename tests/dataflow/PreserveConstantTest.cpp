//===- tests/dataflow/PreserveConstantTest.cpp - Section 3.1.2 cases -----===//

#include "dataflow/PreserveConstant.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

AffineAccess access(const char *Array, int64_t A, int64_t B) {
  AffineAccess Acc;
  Acc.Array = Array;
  Acc.A = Poly::constant(A);
  Acc.B = Poly::constant(B);
  return Acc;
}

AffineAccess accessSym(const char *Array, Poly A, Poly B) {
  AffineAccess Acc;
  Acc.Array = Array;
  Acc.A = std::move(A);
  Acc.B = std::move(B);
  return Acc;
}

DistanceValue preserve(const AffineAccess &D, const AffineAccess &K,
                       int64_t Pr, int64_t Trip = 1000,
                       ProblemMode Mode = ProblemMode::Must,
                       FlowDirection Dir = FlowDirection::Forward) {
  PreserveQuery Q;
  Q.Preserved = &D;
  Q.Killer = &K;
  Q.Pr = Pr;
  Q.TripCount = Trip;
  Q.Mode = Mode;
  Q.Direction = Dir;
  return computePreserveConstant(Q);
}

} // namespace

// Paper Section 3.1.2, case analysis with the Fig. 1 references.
TEST(PreserveConstantTest, ConstantKillDistancePaperExample) {
  // d = C[i+2], d' = C[i]: k == 2, pr == 0 -> p == 1.
  EXPECT_EQ(preserve(access("C", 1, 2), access("C", 1, 0), 0),
            DistanceValue::finite(1));
}

TEST(PreserveConstantTest, TextuallyIdenticalKillsEverything) {
  // k == 0 == pr -> bottom.
  EXPECT_TRUE(
      preserve(access("C", 1, 2), access("C", 1, 2), 0).isNoInstance());
  // Same references but pr == 1 (killer not downstream): k == 0 < pr,
  // no in-range kill -> top.
  EXPECT_TRUE(
      preserve(access("C", 1, 2), access("C", 1, 2), 1).isAllInstances());
}

TEST(PreserveConstantTest, KillBelowRangeIsHarmless) {
  // d = X[i], d' = X[i+2]: k == -2 -> top (the paper's case (ii) example).
  EXPECT_TRUE(
      preserve(access("X", 1, 0), access("X", 1, 2), 0).isAllInstances());
}

TEST(PreserveConstantTest, NumericScanPaperExample) {
  // d = B[2i], d' = B[i]: k(i) = i/2, min over k > 0 is 1/2 -> p == 0.
  EXPECT_EQ(preserve(access("B", 2, 0), access("B", 1, 0), 0),
            DistanceValue::finite(0));
  // Reverse roles: d = B[i], d' = B[2i]: k(i) = -i -> top.
  EXPECT_TRUE(
      preserve(access("B", 1, 0), access("B", 2, 0), 0).isAllInstances());
}

TEST(PreserveConstantTest, NumericScanExactIntegerHit) {
  // d = X[2i], d' = X[i+1]: k(i) = (i - 1) / 2; k(3) == 1 > 0, k(1) == 0
  // == pr at i == 1 -> the newest in-range instance dies -> bottom.
  EXPECT_TRUE(
      preserve(access("X", 2, 0), access("X", 1, 1), 0).isNoInstance());
}

TEST(PreserveConstantTest, NumericScanDecreasingSlope) {
  // d = X[-i + 100], d' = X[i]: k(i) = (-2i + 100) / (-1) = 2i - 100.
  // Increasing w.r.t. sign... slope = (-2)/(-1) = 2 > 0; crossing at
  // k(i) = 0 -> i = 50 exact integer in range -> bottom.
  EXPECT_TRUE(
      preserve(access("X", -1, 100), access("X", 1, 0), 0).isNoInstance());
  // With pr = 1: crossing k(i) = 1 at i = 50.5; first above is i = 51,
  // k(51) = 2 -> p = 1.
  EXPECT_EQ(preserve(access("X", -1, 100), access("X", 1, 0), 1),
            DistanceValue::finite(1));
}

TEST(PreserveConstantTest, KillOutsideTripCountIgnored) {
  // d = X[2i], d' = X[i+9]: k(i) = (i - 9) / 2 reaches pr = 0 only at
  // i = 9; with UB = 5 no such iteration exists -> top.
  EXPECT_TRUE(
      preserve(access("X", 2, 0), access("X", 1, 9), 0, 5).isAllInstances());
  // With UB = 1000, k(9) == 0 == pr is an exact in-range hit: the
  // newest instance dies every 9th-iteration crossing -> bottom.
  EXPECT_TRUE(
      preserve(access("X", 2, 0), access("X", 1, 9), 0, 1000).isNoInstance());
  // Fractional minimum: d = X[3i], d' = X[i+1]: k(i) = (2i - 1) / 3,
  // crossing at i = 1/2, min above 0 is k(1) = 1/3 -> p = 0.
  EXPECT_EQ(preserve(access("X", 3, 0), access("X", 1, 1), 0, 1000),
            DistanceValue::finite(0));
}

TEST(PreserveConstantTest, ConstantKillSaturatesToTop) {
  // k == 900 constant with UB = 100: p = 899 >= UB - 1 -> AllInstances.
  EXPECT_TRUE(
      preserve(access("X", 1, 900), access("X", 1, 0), 0, 100)
          .isAllInstances());
}

TEST(PreserveConstantTest, SymbolicConstantDistanceFig4) {
  // X[N*i + N + j] preserved against X[N*i + j]: k = N/N = 1, pr = 0
  // -> p = 0; at pr = 1 -> bottom.
  Poly N = Poly::symbol("N");
  Poly J = Poly::symbol("j");
  AffineAccess D = accessSym("X", N, N + J);
  AffineAccess K = accessSym("X", N, J);
  EXPECT_EQ(preserve(D, K, 0, UnknownTripCount), DistanceValue::finite(0));
  EXPECT_TRUE(preserve(D, K, 1, UnknownTripCount).isNoInstance());
}

TEST(PreserveConstantTest, SymbolicUnknownIsConservative) {
  // Incomparable symbolic constants: must -> nothing preserved,
  // may -> everything preserved.
  Poly One = Poly::constant(1);
  AffineAccess D = accessSym("X", One, Poly::symbol("n"));
  AffineAccess K = accessSym("X", One, Poly::symbol("m"));
  EXPECT_TRUE(preserve(D, K, 0).isNoInstance());
  EXPECT_TRUE(
      preserve(D, K, 0, 1000, ProblemMode::May).isAllInstances());
}

TEST(PreserveConstantTest, MayModeOnlyDefiniteKills) {
  // Non-constant k: may preserves everything.
  EXPECT_TRUE(preserve(access("B", 2, 0), access("B", 1, 0), 0, 1000,
                       ProblemMode::May)
                  .isAllInstances());
  // Definite kill X[f(i)+2]: may preserves up to distance 1.
  EXPECT_EQ(preserve(access("X", 1, 0), access("X", 1, -2), 0, 1000,
                     ProblemMode::May),
            DistanceValue::finite(1));
}

TEST(PreserveConstantTest, BackwardFlipsDistanceSign) {
  // Forward: d = X[i], d' = X[i-1]: the killer rewrites the element d
  // produced one iteration earlier, k == 1 -> p == 0.
  EXPECT_EQ(preserve(access("X", 1, 0), access("X", 1, -1), 0),
            DistanceValue::finite(0));
  // Backward the same pair looks one iteration into the past: k == -1,
  // out of range -> top.
  EXPECT_TRUE(preserve(access("X", 1, 0), access("X", 1, -1), 0, 1000,
                       ProblemMode::Must, FlowDirection::Backward)
                  .isAllInstances());
  // And symmetrically, d' = X[i+1] kills backward instances at
  // distance 1 (it touches the element d will produce one iteration
  // later) but no forward ones.
  EXPECT_EQ(preserve(access("X", 1, 0), access("X", 1, 1), 0, 1000,
                     ProblemMode::Must, FlowDirection::Backward),
            DistanceValue::finite(0));
  EXPECT_TRUE(
      preserve(access("X", 1, 0), access("X", 1, 1), 0).isAllInstances());
}

TEST(PreserveConstantTest, WholeArrayKillConservative) {
  AffineAccess D = access("X", 1, 0);
  PreserveQuery Q;
  Q.Preserved = &D;
  Q.Killer = nullptr;
  Q.Pr = 0;
  Q.Mode = ProblemMode::Must;
  EXPECT_TRUE(computePreserveConstant(Q).isNoInstance());
  Q.Mode = ProblemMode::May;
  EXPECT_TRUE(computePreserveConstant(Q).isAllInstances());
}

TEST(PreserveConstantTest, LoopInvariantCases) {
  // X[5] killed by X[5]: everything dies.
  EXPECT_TRUE(
      preserve(access("X", 0, 5), access("X", 0, 5), 0).isNoInstance());
  // X[5] vs X[7]: disjoint cells -> top.
  EXPECT_TRUE(
      preserve(access("X", 0, 5), access("X", 0, 7), 0).isAllInstances());
  // X[5] vs moving X[i]: hits cell 5 at i == 5 -> must kills all.
  EXPECT_TRUE(
      preserve(access("X", 0, 5), access("X", 1, 0), 0).isNoInstance());
  // X[5] vs X[i] with UB = 3: never reaches cell 5 -> top.
  EXPECT_TRUE(
      preserve(access("X", 0, 5), access("X", 1, 0), 0, 3).isAllInstances());
  // X[5] vs moving killer in may mode: not definite -> all preserved.
  EXPECT_TRUE(preserve(access("X", 0, 5), access("X", 1, 0), 0, 1000,
                       ProblemMode::May)
                  .isAllInstances());
}

TEST(PreserveConstantTest, NonIntegerConstantDistanceNeverKills) {
  // d = X[2i], d' = X[2i+1]: k == -1/2... choose B diff 1: k = 1/2
  // constant -> never an integer distance -> top (refinement note in
  // the header).
  EXPECT_TRUE(
      preserve(access("X", 2, 1), access("X", 2, 0), 0).isAllInstances());
}

// Property sweep: brute-force soundness of the preserve constant
// against its defining condition (Section 3.1.2):
//   p = max{ d < UB | forall i in I, forall d' with pr <= d' <= d:
//            f2(i) != f1(i - d') }.
// The computed constant must never exceed the brute-forced maximum
// (must-problems demand a safe underestimate).
TEST(PreserveConstantTest, BruteForceSoundnessProperty) {
  const int64_t UB = 12;
  auto bruteMax = [&](int64_t A1, int64_t B1, int64_t A2, int64_t B2,
                      int64_t Pr) -> int64_t {
    // Returns the largest safe delta, or Pr - 1 when even delta == Pr
    // is killed (empty range).
    int64_t Best = Pr - 1;
    for (int64_t Delta = Pr; Delta < UB; ++Delta) {
      bool Safe = true;
      for (int64_t I = 1; I <= UB && Safe; ++I)
        for (int64_t DPrime = Pr; DPrime <= Delta && Safe; ++DPrime)
          if (A2 * I + B2 == A1 * (I - DPrime) + B1)
            Safe = false;
      if (!Safe)
        break;
      Best = Delta;
    }
    return Best;
  };

  for (int64_t A1 = -2; A1 <= 2; ++A1) {
    if (A1 == 0)
      continue;
    for (int64_t A2 = -2; A2 <= 2; ++A2) {
      for (int64_t B1 = -3; B1 <= 3; ++B1) {
        for (int64_t B2 = -3; B2 <= 3; ++B2) {
          for (int64_t Pr = 0; Pr <= 1; ++Pr) {
            DistanceValue P =
                preserve(access("X", A1, B1), access("X", A2, B2), Pr, UB);
            int64_t Computed = P.isNoInstance()    ? Pr - 1
                               : P.isAllInstances() ? UB - 1
                                                    : P.getDistance();
            int64_t Brute = bruteMax(A1, B1, A2, B2, Pr);
            EXPECT_LE(Computed, Brute)
                << "A1=" << A1 << " B1=" << B1 << " A2=" << A2
                << " B2=" << B2 << " pr=" << Pr;
          }
        }
      }
    }
  }
}
