//===- tests/dataflow/CostBoundTest.cpp - Paper cost-bound regression ----===//
//
// The paper's central practicality claim, held as a regression test:
// under the fixed two-pass schedule (Theorems 1 and 2), a must-problem
// solve visits exactly 3N nodes (one initialization pass plus two
// iteration passes over the N-node flow graph) and a may-problem solve
// exactly 2N (its initialization writes constants without visiting
// nodes). Both engines are measured over a randomized corpus plus the
// bundled shapes, and IterateToFixpoint is checked against the schedule:
// it can save at most the counted initialization pass, never more.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "dataflow/CompiledFlow.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <string>

using namespace ardf;

namespace {

ProblemSpec mustSpecs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
};

ProblemSpec maySpecs[] = {
    ProblemSpec::reachingReferences(),
};

struct Solved {
  unsigned NumNodes = 0;
  SolveResult Result;
};

Solved solveFirstLoop(const std::string &Source, const ProblemSpec &Spec,
                      SolverOptions Opts) {
  Program P = parseOrDie(Source);
  const DoLoopStmt *Loop = P.getFirstLoop();
  EXPECT_NE(Loop, nullptr) << Source;
  LoopFlowGraph Graph(*Loop);
  FrameworkInstance FW(Graph, P, Spec);
  Solved S;
  S.NumNodes = Graph.getNumNodes();
  if (Opts.Eng == SolverOptions::Engine::PackedKernel) {
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);
    S.Result = solveCompiled(CF, Opts);
  } else {
    S.Result = solveDataFlow(FW, Opts);
  }
  return S;
}

/// PaperSchedule must hit the bound exactly -- not "at most": the
/// schedule is fixed, so any deviation means the accounting (or the
/// pass loop) changed.
void expectExactBound(const std::string &Source, SolverOptions Opts) {
  for (const ProblemSpec &Spec : mustSpecs) {
    Solved S = solveFirstLoop(Source, Spec, Opts);
    EXPECT_EQ(S.Result.NodeVisits, 3 * S.NumNodes)
        << Spec.Name << " on: " << Source;
    EXPECT_EQ(S.Result.Passes, 2u) << Spec.Name;
  }
  for (const ProblemSpec &Spec : maySpecs) {
    Solved S = solveFirstLoop(Source, Spec, Opts);
    EXPECT_EQ(S.Result.NodeVisits, 2 * S.NumNodes)
        << Spec.Name << " on: " << Source;
    EXPECT_EQ(S.Result.Passes, 2u) << Spec.Name;
  }
}

/// IterateToFixpoint runs the same passes with change tracking plus one
/// confirming pass, but its initialization is identical -- so it can
/// undercut the schedule by at most the init pass's N visits (a must
/// problem converging after one iteration pass), and must always
/// converge on these single-loop graphs.
void expectFixpointWithinInitOfSchedule(const std::string &Source,
                                        SolverOptions Base) {
  SolverOptions Fixp = Base;
  Fixp.Strat = SolverOptions::Strategy::IterateToFixpoint;
  auto CheckOne = [&](const ProblemSpec &Spec) {
    Solved Paper = solveFirstLoop(Source, Spec, Base);
    Solved Fix = solveFirstLoop(Source, Spec, Fixp);
    EXPECT_TRUE(Fix.Result.Converged) << Spec.Name << " on: " << Source;
    EXPECT_GE(Fix.Result.NodeVisits + Fix.NumNodes, Paper.Result.NodeVisits)
        << Spec.Name << " on: " << Source;
  };
  for (const ProblemSpec &Spec : mustSpecs)
    CheckOne(Spec);
  for (const ProblemSpec &Spec : maySpecs)
    CheckOne(Spec);
}

std::string corpusLoop(unsigned Stmts, int Cond, uint64_t Seed) {
  return ardfbench::makeSyntheticLoop(Stmts, 4, Cond,
                                      Seed * 7919 + Stmts * 31 + Cond, 1000);
}

} // namespace

TEST(CostBoundTest, ReferenceEngineMeetsBoundExactly) {
  for (unsigned Stmts : {4u, 9u, 17u, 33u})
    for (int Cond : {0, 25, 60})
      for (uint64_t Seed : {1u, 2u, 3u})
        expectExactBound(corpusLoop(Stmts, Cond, Seed), SolverOptions());
}

TEST(CostBoundTest, PackedEngineMeetsBoundExactly) {
  SolverOptions Opts;
  Opts.Eng = SolverOptions::Engine::PackedKernel;
  for (unsigned Stmts : {4u, 9u, 17u, 33u})
    for (int Cond : {0, 25, 60})
      for (uint64_t Seed : {1u, 2u, 3u})
        expectExactBound(corpusLoop(Stmts, Cond, Seed), Opts);
}

TEST(CostBoundTest, FixpointNeverBeatsScheduleByMoreThanInit) {
  for (unsigned Stmts : {4u, 17u})
    for (int Cond : {0, 60})
      for (uint64_t Seed : {1u, 2u})
        expectFixpointWithinInitOfSchedule(corpusLoop(Stmts, Cond, Seed),
                                           SolverOptions());
}

TEST(CostBoundTest, FixpointBoundHoldsOnPackedEngine) {
  SolverOptions Opts;
  Opts.Eng = SolverOptions::Engine::PackedKernel;
  for (unsigned Stmts : {4u, 17u})
    for (uint64_t Seed : {5u, 6u})
      expectFixpointWithinInitOfSchedule(corpusLoop(Stmts, 30, Seed), Opts);
}
