//===- tests/dataflow/SimdOracleTest.cpp - Scalar vs SIMD oracle ---------===//
//
// The solver half of the SIMD guarantee: under every dispatch tier the
// host can execute, the packed engines must produce bit-identical
// SolveResults to the Reference engine over the randomized corpus and
// the boundary shapes, for all paper problems (plus per-occurrence
// variants) and both pass strategies. The per-operation half lives in
// VectorOpsTest.cpp; the CI matrix re-runs this whole binary once per
// tier via ARDF_FORCE_ISA to also cover the env-dispatch path.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "dataflow/CompiledFlow.h"
#include "dataflow/VectorOps.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;
using simd::Isa;

namespace {

ProblemSpec allSpecs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
    ProblemSpec::reachingReferences(),
    ProblemSpec::availableValuesPerOccurrence(),
    ProblemSpec::busyStoresPerOccurrence(),
};

const char *HandCorpus[] = {
    "do i = 1, 100 { A[i+2] = A[i] + X; }",
    "do i = 1, 5 { A[i+1] = A[i]; }",
    "do i = 1, N { A[i+1] = A[i] + A[i-1]; }",
    "do i = 1, 50 { if (B[i] > 0) { A[i+1] = B[i]; } else { A[i+1] = 0; } "
    "C[i] = A[i] + B[i-2]; }",
    "do i = 1, 10 { X = X + 1; }",
};

std::vector<Isa> supportedTiers() {
  std::vector<Isa> Tiers;
  for (Isa T : {Isa::Scalar, Isa::NEON, Isa::AVX2, Isa::AVX512})
    if (simd::isaSupported(T))
      Tiers.push_back(T);
  return Tiers;
}

/// Pins the dispatch tier for one scope and restores the previous one.
class IsaScope {
public:
  explicit IsaScope(Isa Tier) : Prev(simd::activeIsa()) {
    EXPECT_TRUE(simd::setActiveIsaForTesting(Tier));
  }
  ~IsaScope() { simd::setActiveIsaForTesting(Prev); }

private:
  Isa Prev;
};

/// Solves \p Spec with the Reference engine and with both packed
/// engines under the active tier, asserting bit-identity throughout.
void expectTiersAgree(const std::string &Source, const ProblemSpec &Spec,
                      SolverOptions Opts) {
  Program P = parseOrDie(Source);
  const DoLoopStmt *Loop = P.getFirstLoop();
  ASSERT_NE(Loop, nullptr) << Source;
  LoopFlowGraph Graph(*Loop);
  FrameworkInstance FW(Graph, P, Spec);

  Opts.Eng = SolverOptions::Engine::Reference;
  SolveResult Ref = solveDataFlow(FW, Opts);
  SolverOptions Simd = Opts;
  Simd.Eng = SolverOptions::Engine::PackedSimd;
  SolveResult Vec = solveDataFlow(FW, Simd);

  const char *Tier = simd::isaName(simd::activeIsa());
  EXPECT_EQ(Vec.In, Ref.In) << Spec.Name << " tier=" << Tier;
  EXPECT_EQ(Vec.Out, Ref.Out) << Spec.Name << " tier=" << Tier;
  EXPECT_EQ(Vec.NodeVisits, Ref.NodeVisits) << Spec.Name;
  EXPECT_EQ(Vec.Passes, Ref.Passes) << Spec.Name;
  EXPECT_EQ(Vec.MeetOps, Ref.MeetOps) << Spec.Name;
  EXPECT_EQ(Vec.ApplyOps, Ref.ApplyOps) << Spec.Name;
  EXPECT_EQ(Vec.Converged, Ref.Converged) << Spec.Name;
}

} // namespace

TEST(SimdOracleTest, HandCorpusEveryTier) {
  for (Isa Tier : supportedTiers()) {
    IsaScope Scope(Tier);
    for (const char *Source : HandCorpus)
      for (const ProblemSpec &Spec : allSpecs)
        expectTiersAgree(Source, Spec, SolverOptions());
  }
}

TEST(SimdOracleTest, RandomizedCorpusPaperScheduleEveryTier) {
  for (Isa Tier : supportedTiers()) {
    IsaScope Scope(Tier);
    for (unsigned Stmts : {4u, 17u, 33u})
      for (int Cond : {0, 40})
        for (uint64_t Seed : {1u, 2u}) {
          std::string Source = ardfbench::makeSyntheticLoop(
              Stmts, 4, Cond, Seed * 7919 + Stmts * 31 + Cond, 1000);
          for (const ProblemSpec &Spec : allSpecs)
            expectTiersAgree(Source, Spec, SolverOptions());
        }
  }
}

TEST(SimdOracleTest, RandomizedCorpusIterateToFixpointEveryTier) {
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  for (Isa Tier : supportedTiers()) {
    IsaScope Scope(Tier);
    for (unsigned Stmts : {6u, 21u}) {
      std::string Source =
          ardfbench::makeSyntheticLoop(Stmts, 3, 30, 131u + Stmts, 500);
      for (const ProblemSpec &Spec : allSpecs)
        expectTiersAgree(Source, Spec, Opts);
    }
  }
}

TEST(SimdOracleTest, SimdSingleSolveMatchesPackedKernel) {
  // A lone PackedSimd solve is the packed kernel under the active tier;
  // results (counters included) must match the PackedKernel engine.
  std::string Source = ardfbench::makeSyntheticLoop(25, 4, 30, 4242, 800);
  Program P = parseOrDie(Source);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    SolverOptions Packed;
    Packed.Eng = SolverOptions::Engine::PackedKernel;
    SolverOptions Simd;
    Simd.Eng = SolverOptions::Engine::PackedSimd;
    SolveResult A = solveDataFlow(FW, Packed);
    SolveResult B = solveDataFlow(FW, Simd);
    EXPECT_EQ(B.In, A.In) << Spec.Name;
    EXPECT_EQ(B.Out, A.Out) << Spec.Name;
    EXPECT_EQ(B.NodeVisits, A.NodeVisits) << Spec.Name;
    EXPECT_EQ(B.MeetOps, A.MeetOps) << Spec.Name;
    EXPECT_EQ(B.ApplyOps, A.ApplyOps) << Spec.Name;
  }
}
