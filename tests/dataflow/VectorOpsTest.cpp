//===- tests/dataflow/VectorOpsTest.cpp - SIMD row-op backends -----------===//
//
// The operation half of the SIMD guarantee: every backend the host can
// execute must agree bit-for-bit with the portable scalar backend on
// every row operation, over boundary-heavy random rows of many lengths
// (vector bodies plus scalar tails). The solver half (whole solves
// bit-identical across tiers) lives in SimdOracleTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "dataflow/VectorOps.h"
#include "lattice/Distance.h"
#include "lattice/PackedDistance.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

using namespace ardf;
using simd::Isa;

namespace {

const Isa AllTiers[] = {Isa::Scalar, Isa::NEON, Isa::AVX2, Isa::AVX512};

std::vector<Isa> supportedTiers() {
  std::vector<Isa> Tiers;
  for (Isa T : AllTiers)
    if (simd::isaSupported(T))
      Tiers.push_back(T);
  return Tiers;
}

/// Lattice boundary values mixed with uniform noise: saturation points,
/// the sign bit the AVX2 backend biases around, and near-bound packs.
std::vector<uint64_t> randomRow(std::mt19937_64 &Rng, size_t N) {
  static const uint64_t Boundary[] = {packed::NoInstance,
                                      packed::Zero,
                                      2,
                                      3,
                                      packed::AllInstances,
                                      packed::AllInstances - 1,
                                      (1ULL << 63) - 1,
                                      1ULL << 63,
                                      (1ULL << 63) + 1,
                                      999,
                                      1000,
                                      1001};
  std::vector<uint64_t> Row(N);
  for (uint64_t &V : Row)
    V = (Rng() & 1) ? Boundary[Rng() % std::size(Boundary)] : Rng();
  return Row;
}

/// Narrowed-cell boundary mix: the u32 saturation points, the sign bit
/// the AVX2 increment biases around, and values just under NarrowLimit.
std::vector<uint32_t> randomRow32(std::mt19937_64 &Rng, size_t N) {
  static const uint32_t Boundary[] = {0,
                                      1,
                                      2,
                                      3,
                                      packed::AllInstances32,
                                      packed::AllInstances32 - 1,
                                      (1u << 31) - 1,
                                      1u << 31,
                                      (1u << 31) + 1,
                                      static_cast<uint32_t>(packed::NarrowLimit - 1),
                                      999,
                                      1000};
  std::vector<uint32_t> Row(N);
  for (uint32_t &V : Row)
    V = (Rng() & 1) ? Boundary[Rng() % std::size(Boundary)]
                    : static_cast<uint32_t>(Rng());
  return Row;
}

const size_t Lengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                          15, 16, 17, 31, 32, 33, 64, 100};

const uint64_t Bounds[] = {2,    3,    5,    1000, (1ULL << 63) + 5,
                           packed::AllInstances};

const uint32_t Bounds32[] = {2, 3, 5, 1000, (1u << 31) + 5,
                             packed::AllInstances32};

/// Restores the dispatch choice other tests may rely on.
class IsaScope {
public:
  explicit IsaScope(Isa Tier) : Prev(simd::activeIsa()) {
    Applied = simd::setActiveIsaForTesting(Tier);
  }
  ~IsaScope() { simd::setActiveIsaForTesting(Prev); }
  bool applied() const { return Applied; }

private:
  Isa Prev;
  bool Applied;
};

} // namespace

TEST(VectorOpsTest, BackendsMatchScalarOnRandomRows) {
  const simd::RowOps &Ref = simd::backendOps(Isa::Scalar);
  for (Isa Tier : supportedTiers()) {
    const simd::RowOps &Ops = simd::backendOps(Tier);
    EXPECT_EQ(Ops.Tier, Tier);
    std::mt19937_64 Rng(0xa11f1ed5 + static_cast<unsigned>(Tier));
    for (size_t N : Lengths)
      for (unsigned Rep = 0; Rep != 8; ++Rep) {
        std::vector<uint64_t> A = randomRow(Rng, N);
        std::vector<uint64_t> B = randomRow(Rng, N);

        std::vector<uint64_t> Want = A, Got = A;
        Ref.MinInto(Want.data(), B.data(), N);
        Ops.MinInto(Got.data(), B.data(), N);
        EXPECT_EQ(Got, Want) << "MinInto " << simd::isaName(Tier)
                             << " N=" << N;

        Want = A;
        Got = A;
        Ref.MaxInto(Want.data(), B.data(), N);
        Ops.MaxInto(Got.data(), B.data(), N);
        EXPECT_EQ(Got, Want) << "MaxInto " << simd::isaName(Tier)
                             << " N=" << N;

        Want.assign(N, 0);
        Got.assign(N, 0);
        Ref.MinRows(Want.data(), A.data(), B.data(), N);
        Ops.MinRows(Got.data(), A.data(), B.data(), N);
        EXPECT_EQ(Got, Want) << "MinRows " << simd::isaName(Tier)
                             << " N=" << N;

        EXPECT_EQ(Ops.XorAccum(A.data(), B.data(), N),
                  Ref.XorAccum(A.data(), B.data(), N))
            << "XorAccum " << simd::isaName(Tier) << " N=" << N;
      }
  }
}

TEST(VectorOpsTest, NarrowedBackendsMatchScalarOnRandomRows) {
  const simd::RowOps32 &Ref = simd::backendOps32(Isa::Scalar);
  for (Isa Tier : supportedTiers()) {
    const simd::RowOps32 &Ops = simd::backendOps32(Tier);
    EXPECT_EQ(Ops.Tier, Tier);
    std::mt19937_64 Rng(0x32b17 + static_cast<unsigned>(Tier));
    for (size_t N : Lengths)
      for (unsigned Rep = 0; Rep != 8; ++Rep) {
        std::vector<uint32_t> A = randomRow32(Rng, N);
        std::vector<uint32_t> B = randomRow32(Rng, N);

        std::vector<uint32_t> Want = A, Got = A;
        Ref.MinInto(Want.data(), B.data(), N);
        Ops.MinInto(Got.data(), B.data(), N);
        EXPECT_EQ(Got, Want) << "MinInto32 " << simd::isaName(Tier)
                             << " N=" << N;

        Want = A;
        Got = A;
        Ref.MaxInto(Want.data(), B.data(), N);
        Ops.MaxInto(Got.data(), B.data(), N);
        EXPECT_EQ(Got, Want) << "MaxInto32 " << simd::isaName(Tier)
                             << " N=" << N;

        Want.assign(N, 0);
        Got.assign(N, 0);
        Ref.MinRows(Want.data(), A.data(), B.data(), N);
        Ops.MinRows(Got.data(), A.data(), B.data(), N);
        EXPECT_EQ(Got, Want) << "MinRows32 " << simd::isaName(Tier)
                             << " N=" << N;

        EXPECT_EQ(Ops.XorAccum(A.data(), B.data(), N),
                  Ref.XorAccum(A.data(), B.data(), N))
            << "XorAccum32 " << simd::isaName(Tier) << " N=" << N;
      }
  }
}

TEST(VectorOpsTest, NarrowedIncrementMatchesPackedSemanticsEveryTier) {
  for (Isa Tier : supportedTiers()) {
    const simd::RowOps32 &Ops = simd::backendOps32(Tier);
    std::mt19937_64 Rng(0x32ead + static_cast<unsigned>(Tier));
    for (uint32_t Bound : Bounds32)
      for (size_t N : Lengths) {
        std::vector<uint32_t> Src = randomRow32(Rng, N);
        for (size_t I = 0; I + 4 < N; I += 5)
          Src[I] = Bound - 1 + static_cast<uint32_t>(I % 3);
        std::vector<uint32_t> Got(N, 0);
        Ops.Increment(Got.data(), Src.data(), N, Bound);
        for (size_t I = 0; I != N; ++I)
          ASSERT_EQ(Got[I], packed::increment32(Src[I], Bound))
              << simd::isaName(Tier) << " N=" << N << " I=" << I
              << " X=" << Src[I] << " Bound=" << Bound;
      }
  }
}

TEST(VectorOpsTest, NarrowedUnpackMatchesLatticeSemanticsEveryTier) {
  for (Isa Tier : supportedTiers()) {
    const simd::RowOps32 &Ops = simd::backendOps32(Tier);
    std::mt19937_64 Rng(0x32eca + static_cast<unsigned>(Tier));
    for (size_t N : Lengths) {
      std::vector<uint32_t> Src = randomRow32(Rng, N);
      std::vector<DistanceValue> Got(N, DistanceValue::finite(-77));
      Ops.Unpack(Got.data(), Src.data(), N);
      for (size_t I = 0; I != N; ++I)
        ASSERT_EQ(Got[I], packed::unpack32(Src[I]))
            << simd::isaName(Tier) << " N=" << N << " I=" << I
            << " X=" << Src[I];
    }
  }
}

TEST(VectorOpsTest, NarrowWidenRoundTripsAndCommutesWithIncrement) {
  const uint64_t Samples[] = {packed::NoInstance, packed::Zero,     2,
                              3,                  999,              1000,
                              packed::NarrowLimit - 1,
                              packed::AllInstances};
  for (uint64_t X : Samples) {
    ASSERT_TRUE(packed::narrowable(X)) << X;
    EXPECT_EQ(packed::widen(packed::narrow(X)), X);
    for (uint64_t Bound : {uint64_t(2), uint64_t(1000)})
      EXPECT_EQ(packed::widen(packed::increment32(
                    packed::narrow(X), packed::narrow(Bound))),
                packed::increment(X, Bound))
          << "X=" << X << " Bound=" << Bound;
  }
  EXPECT_FALSE(packed::narrowable(packed::NarrowLimit));
  EXPECT_FALSE(packed::narrowable(packed::AllInstances - 1));
}

TEST(VectorOpsTest, UnpackMatchesLatticeSemanticsEveryTier) {
  for (Isa Tier : supportedTiers()) {
    const simd::RowOps &Ops = simd::backendOps(Tier);
    std::mt19937_64 Rng(0xdeca1 + static_cast<unsigned>(Tier));
    for (size_t N : Lengths) {
      std::vector<uint64_t> Src = randomRow(Rng, N);
      // Poisoned destination: stale bytes must not leak through.
      std::vector<DistanceValue> Got(N, DistanceValue::finite(-77));
      Ops.Unpack(Got.data(), Src.data(), N);
      for (size_t I = 0; I != N; ++I)
        ASSERT_EQ(Got[I], packed::unpack(Src[I]))
            << simd::isaName(Tier) << " N=" << N << " I=" << I
            << " X=" << Src[I];
    }
  }
}

TEST(VectorOpsTest, IncrementMatchesPackedSemanticsEveryTier) {
  for (Isa Tier : supportedTiers()) {
    const simd::RowOps &Ops = simd::backendOps(Tier);
    std::mt19937_64 Rng(0xbead + static_cast<unsigned>(Tier));
    for (uint64_t Bound : Bounds)
      for (size_t N : Lengths) {
        std::vector<uint64_t> Src = randomRow(Rng, N);
        // Make sure the saturation seam itself shows up in the row.
        for (size_t I = 0; I + 4 < N; I += 5)
          Src[I] = Bound - 1 + (I % 3);
        std::vector<uint64_t> Got(N, 0);
        Ops.Increment(Got.data(), Src.data(), N, Bound);
        for (size_t I = 0; I != N; ++I)
          ASSERT_EQ(Got[I], packed::increment(Src[I], Bound))
              << simd::isaName(Tier) << " N=" << N << " I=" << I
              << " X=" << Src[I] << " Bound=" << Bound;
      }
  }
}

TEST(VectorOpsTest, ScalarAlwaysSupportedAndBestIsSupported) {
  EXPECT_TRUE(simd::isaSupported(Isa::Scalar));
  EXPECT_TRUE(simd::isaSupported(simd::bestSupportedIsa()));
  // The active tier is always one the host can execute.
  EXPECT_TRUE(simd::isaSupported(simd::activeIsa()));
}

TEST(VectorOpsTest, IsaNamesRoundTrip) {
  for (Isa Tier : AllTiers) {
    Isa Parsed;
    ASSERT_TRUE(simd::parseIsaName(simd::isaName(Tier), Parsed))
        << simd::isaName(Tier);
    EXPECT_EQ(Parsed, Tier);
  }
  Isa Out;
  EXPECT_FALSE(simd::parseIsaName("", Out));
  EXPECT_FALSE(simd::parseIsaName("sse9", Out));
  EXPECT_FALSE(simd::parseIsaName("AVX2", Out)); // names are lowercase
}

TEST(VectorOpsTest, SetActiveIsaRepointsDispatch) {
  Isa Prev = simd::activeIsa();
  {
    IsaScope Scope(Isa::Scalar);
    ASSERT_TRUE(Scope.applied());
    EXPECT_EQ(simd::activeIsa(), Isa::Scalar);
    EXPECT_EQ(simd::rowOps().Tier, Isa::Scalar);
  }
  EXPECT_EQ(simd::activeIsa(), Prev);
  // An unexecutable tier is refused and leaves the choice untouched.
  for (Isa Tier : AllTiers)
    if (!simd::isaSupported(Tier)) {
      EXPECT_FALSE(simd::setActiveIsaForTesting(Tier));
      EXPECT_EQ(simd::activeIsa(), Prev);
    }
}

TEST(VectorOpsTest, ForceStatusMatchesEnvironment) {
  // The env override is resolved once at first dispatch; reconstruct
  // the expected verdict from the live environment so this test holds
  // both in plain runs (unset -> None) and under the CI tier matrix.
  const char *Env = std::getenv("ARDF_FORCE_ISA");
  simd::ForceStatus St = simd::forceStatus();
  if (!Env) {
    EXPECT_EQ(St, simd::ForceStatus::None);
    return;
  }
  Isa Forced;
  if (!simd::parseIsaName(Env, Forced))
    EXPECT_EQ(St, simd::ForceStatus::Invalid);
  else if (!simd::isaSupported(Forced))
    EXPECT_EQ(St, simd::ForceStatus::Unsupported);
  else
    EXPECT_EQ(St, simd::ForceStatus::Applied);
}
