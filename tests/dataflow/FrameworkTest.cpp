//===- tests/dataflow/FrameworkTest.cpp - Framework instances ------------===//

#include "dataflow/Framework.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace ardf;

namespace {

struct Built {
  Program Prog;
  std::unique_ptr<LoopFlowGraph> Graph;
  std::unique_ptr<FrameworkInstance> FW;
  SolveResult Result;
};

Built build(const char *Source, ProblemSpec Spec,
            SolverOptions Opts = SolverOptions()) {
  Built B{parseOrDie(Source), nullptr, nullptr, {}};
  const DoLoopStmt *Loop = B.Prog.getFirstLoop();
  EXPECT_NE(Loop, nullptr);
  B.Graph = std::make_unique<LoopFlowGraph>(*Loop);
  B.FW = std::make_unique<FrameworkInstance>(*B.Graph, B.Prog, Spec);
  B.Result = solveDataFlow(*B.FW, Opts);
  return B;
}

/// Index of the tracked reference whose text matches \p Text.
int trackedNamed(const FrameworkInstance &FW, const std::string &Text) {
  for (unsigned I = 0; I != FW.getNumTracked(); ++I) {
    std::ostringstream OS;
    printExpr(OS, *FW.getTracked(I).Ref);
    if (OS.str() == Text &&
        // Prefer matching role disambiguation by first occurrence.
        true)
      return I;
  }
  return -1;
}

} // namespace

TEST(FrameworkTest, ReferenceUniverseRoles) {
  Built B = build("do i = 1, 100 { A[i+1] = A[i] + B[i]; }",
                  ProblemSpec::mustReachingDefs());
  const ReferenceUniverse &U = B.FW->getUniverse();
  unsigned Defs = 0, Uses = 0;
  for (const RefOccurrence &Occ : U.occurrences())
    (Occ.IsDef ? Defs : Uses) += 1;
  EXPECT_EQ(Defs, 1u);
  EXPECT_EQ(Uses, 2u);
  // Reaching defs tracks only the definition.
  EXPECT_EQ(B.FW->getNumTracked(), 1u);
}

TEST(FrameworkTest, AvailableValuesTracksUsesToo) {
  Built B = build("do i = 1, 100 { A[i+1] = A[i] + B[i]; }",
                  ProblemSpec::availableValues());
  EXPECT_EQ(B.FW->getNumTracked(), 3u);
}

TEST(FrameworkTest, SelfRecurrenceReachingDistance) {
  // A[i+2] = A[i]: nothing kills the definition (the self-kill distance
  // 0 lies below pr == 1), so every previous instance reaches the node;
  // in particular the distance-2 instance the use A[i] consumes.
  Built B = build("do i = 1, 100 { A[i+2] = A[i] + 1; }",
                  ProblemSpec::mustReachingDefs());
  unsigned Node = B.FW->getTracked(0).Node;
  EXPECT_TRUE(B.Result.In[Node][0].isAllInstances());
  EXPECT_TRUE(B.Result.In[Node][0].covers(2));
}

TEST(FrameworkTest, MayProblemUsesTwoPasses) {
  Built B = build("do i = 1, 100 { A[i+1] = A[i]; }",
                  ProblemSpec::reachingReferences());
  // No initialization pass: 2 * N node visits.
  EXPECT_EQ(B.Result.NodeVisits, 2 * B.Graph->getNumNodes());
  EXPECT_EQ(B.Result.Passes, 2u);
}

TEST(FrameworkTest, MayProblemConvergesFromBottom) {
  Built B = build("do i = 1, 100 { A[i+1] = A[i]; }",
                  ProblemSpec::reachingReferences());
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  SolveResult Stable = solveDataFlow(*B.FW, Opts);
  ASSERT_TRUE(Stable.Converged);
  EXPECT_EQ(Stable.In, B.Result.In);
  EXPECT_EQ(Stable.Out, B.Result.Out);
}

TEST(FrameworkTest, ConditionalKillLowersMustButNotMay) {
  const char *Source = R"(
    do i = 1, 100 {
      A[i+1] = B[i];
      if (x == 0) { A[i] = 0; }
      C[i] = A[i];
    })";
  // Must-reaching: the conditional A[i] kills nothing on the fall-through
  // path, but must-information takes the meet: at C[i]'s node both
  // A[i+1] (distance 1 instance via the then-path killing at k=1...)
  // Actually the kill A[i] of A[i+1] has k(i) == -1: below range -> no
  // effect. Use a sharper pair instead: the def A[i+1] is killed by the
  // conditional def A[i] at distance 1 in later iterations.
  Built Must = build(Source, ProblemSpec::mustReachingDefs());
  Built May = build(Source, ProblemSpec::reachingReferences());
  // Tracked def A[i+1] exists in both.
  int MustIdx = trackedNamed(*Must.FW, "A[i + 1]");
  int MayIdx = trackedNamed(*May.FW, "A[i + 1]");
  ASSERT_GE(MustIdx, 0);
  ASSERT_GE(MayIdx, 0);
  // At the loop entry, may-information dominates must-information.
  unsigned EntryMust = Must.Graph->getEntry();
  unsigned EntryMay = May.Graph->getEntry();
  EXPECT_LE(Must.Result.In[EntryMust][MustIdx],
            May.Result.In[EntryMay][MayIdx]);
}

TEST(FrameworkTest, BusyStoresBackward) {
  // Fig. 6 shape: A[i] unconditional, A[i+1] conditional. The store
  // A[i] must be 1-busy at the conditional store's node.
  const char *Source = R"(
    do i = 1, 1000 {
      A[i] = x;
      if (x == 0) { A[i+1] = y; }
    })";
  Built B = build(Source, ProblemSpec::busyStores());
  int AiIdx = trackedNamed(*B.FW, "A[i]");
  int Ai1Idx = trackedNamed(*B.FW, "A[i + 1]");
  ASSERT_GE(AiIdx, 0);
  ASSERT_GE(Ai1Idx, 0);
  unsigned CondNode = B.FW->getTracked(Ai1Idx).Node;
  // Backward IN = node exit information; A[i] is busy for all future
  // distances at the conditional store.
  EXPECT_TRUE(B.Result.In[CondNode][AiIdx].covers(1));
  // pr in the working (backward) orientation: A[i]'s node does not
  // follow the conditional node intra-iteration.
  EXPECT_EQ(B.FW->pr(AiIdx, CondNode), 1);
}

TEST(FrameworkTest, BusyStoreKilledByUse) {
  // A use of the element a future store will write kills its busyness:
  // A[i+1] at iteration i reads the element A[i] stores at iteration
  // i+1, so that store instance is not dead.
  const char *Source = R"(
    do i = 1, 1000 {
      A[i] = x;
      y = A[i+1];
    })";
  Built B = build(Source, ProblemSpec::busyStores());
  int AiIdx = trackedNamed(*B.FW, "A[i]");
  ASSERT_GE(AiIdx, 0);
  unsigned UseNode = 0;
  for (const RefOccurrence &Occ : B.FW->getUniverse().occurrences())
    if (!Occ.IsDef)
      UseNode = Occ.Node;
  // Killed at backward distance 1; with pr == 1 (the current
  // iteration's store lies before the use) the kill-free range
  // [pr, p] is empty: nothing survives the use node.
  EXPECT_TRUE(B.FW->preserveAt(AiIdx, UseNode).isNoInstance());

  // By contrast a use of already-stored elements (A[i-1]) kills no
  // future store instance.
  Built C = build(R"(
    do i = 1, 1000 {
      A[i] = x;
      y = A[i-1];
    })",
                  ProblemSpec::busyStores());
  int CIdx = trackedNamed(*C.FW, "A[i]");
  ASSERT_GE(CIdx, 0);
  unsigned CUseNode = 0;
  for (const RefOccurrence &Occ : C.FW->getUniverse().occurrences())
    if (!Occ.IsDef)
      CUseNode = Occ.Node;
  EXPECT_TRUE(C.FW->preserveAt(CIdx, CUseNode).isAllInstances());
}

TEST(FrameworkTest, GuardUsesGenerateForAvailability) {
  // The condition's use of C[i] is a generation site for available
  // values (Fig. 1, statement 3's guard).
  Built B = build("do i = 1, 100 { if (C[i] == 0) { C[i] = 1; } }",
                  ProblemSpec::availableValues());
  bool GuardGen = false;
  for (unsigned I = 0; I != B.FW->getNumTracked(); ++I) {
    const RefOccurrence &Occ = B.FW->getTracked(I);
    if (B.Graph->getNode(Occ.Node).Kind == FlowNodeKind::Guard)
      GuardGen = true;
  }
  EXPECT_TRUE(GuardGen);
}

TEST(FrameworkTest, SummaryNodeKillsEnclosingInstances) {
  // The inner loop rewrites A completely; the outer def A[j] must not
  // survive the summary node.
  const char *Source = R"(
    do j = 1, 100 {
      A[j] = 1;
      do i = 1, 100 { A[i] = 0; }
      B[j] = A[j];
    })";
  Built B = build(Source, ProblemSpec::mustReachingDefs());
  int AjIdx = trackedNamed(*B.FW, "A[j]");
  ASSERT_GE(AjIdx, 0);
  unsigned Summary = 0;
  for (unsigned I = 0; I != B.Graph->getNumNodes(); ++I)
    if (B.Graph->getNode(I).Kind == FlowNodeKind::Summary)
      Summary = I;
  EXPECT_TRUE(B.FW->preserveAt(AjIdx, Summary).isNoInstance());
}

TEST(FrameworkTest, SummaryNodeGeneratesOuterAffineRefs) {
  // B[j] inside the inner loop is affine in the outer IV: it generates
  // in the outer analysis. A[i] (inner IV) is not trackable.
  const char *Source = R"(
    do j = 1, 100 {
      do i = 1, 100 { B[j] = A[i]; }
      C[j] = B[j];
    })";
  Built B = build(Source, ProblemSpec::mustReachingDefs());
  ASSERT_EQ(B.FW->getNumTracked(), 2u); // B[j] in summary, C[j].
  int BjIdx = trackedNamed(*B.FW, "B[j]");
  ASSERT_GE(BjIdx, 0);
  EXPECT_TRUE(B.FW->getTracked(BjIdx).InSummary);
  // And it reaches the use of B[j] in C[j]'s node with all distances
  // (nothing kills B).
  unsigned CNode = B.FW->getTracked(trackedNamed(*B.FW, "C[j]")).Node;
  EXPECT_TRUE(B.Result.In[CNode][BjIdx].covers(0));
}

TEST(FrameworkTest, NonAffineRefKillsWholeArray) {
  const char *Source = R"(
    do i = 1, 100 {
      A[i+1] = 1;
      A[i * i] = 2;
      B[i] = A[i];
    })";
  Built B = build(Source, ProblemSpec::mustReachingDefs());
  // Only A[i+1] is tracked (A[i*i] untrackable).
  int Idx = trackedNamed(*B.FW, "A[i + 1]");
  ASSERT_GE(Idx, 0);
  unsigned NonAffineNode = 0;
  for (const RefOccurrence &Occ : B.FW->getUniverse().occurrences())
    if (!Occ.isTrackable())
      NonAffineNode = Occ.Node;
  EXPECT_TRUE(B.FW->preserveAt(Idx, NonAffineNode).isNoInstance());
}

TEST(FrameworkTest, UnknownTripCountStaysSymbolic) {
  // A second def of A throttles the reaching distance so the result is
  // finite even with a symbolic bound: A[i] kills A[i+3] beyond k == 3.
  Built B = build("do i = 1, N { A[i+3] = A[i]; A[i] = 0; }",
                  ProblemSpec::mustReachingDefs());
  EXPECT_EQ(B.Graph->getTripCount(), UnknownTripCount);
  int Idx = trackedNamed(*B.FW, "A[i + 3]");
  ASSERT_GE(Idx, 0);
  unsigned Node = B.FW->getTracked(Idx).Node;
  EXPECT_EQ(B.Result.In[Node][Idx], DistanceValue::finite(3));
}

TEST(FrameworkTest, SmallTripCountSaturates) {
  // UB = 3: distance 2 == UB - 1 is already "all instances".
  Built B = build("do i = 1, 3 { A[i+2] = A[i]; }",
                  ProblemSpec::mustReachingDefs());
  unsigned Node = B.FW->getTracked(0).Node;
  EXPECT_TRUE(B.Result.In[Node][0].isAllInstances());
}

// Property: for every must-problem the paper schedule's result is a
// fixed point (running more passes changes nothing), across a corpus of
// loop shapes.
TEST(FrameworkTest, PaperScheduleIsFixedPointProperty) {
  const char *Corpus[] = {
      "do i = 1, 50 { A[i+1] = A[i]; }",
      "do i = 1, 50 { A[2*i] = A[i]; B[i] = A[i-1]; }",
      "do i = 1, 50 { if (x == 0) { A[i] = 1; } else { A[i+1] = 2; } }",
      "do i = 1, 50 { A[i] = B[i-2]; if (A[i] == 0) { B[i+1] = 1; } "
      "C[i] = B[i]; }",
      "do i = 1, 50 { X[i+2] = X[i]; X[i+1] = X[i-1]; }",
      "do i = 1, N { A[i+1] = A[i] + A[i-1]; }",
  };
  ProblemSpec Specs[] = {
      ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
      ProblemSpec::busyStores(), ProblemSpec::reachingReferences()};
  for (const char *Source : Corpus) {
    for (const ProblemSpec &Spec : Specs) {
      Built B = build(Source, Spec);
      SolverOptions Opts;
      Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
      SolveResult Stable = solveDataFlow(*B.FW, Opts);
      ASSERT_TRUE(Stable.Converged) << Source << " / " << Spec.Name;
      EXPECT_EQ(Stable.In, B.Result.In) << Source << " / " << Spec.Name;
      EXPECT_EQ(Stable.Out, B.Result.Out) << Source << " / " << Spec.Name;
      EXPECT_LE(Stable.Passes, 3u) << Source << " / " << Spec.Name;
    }
  }
}
