//===- tests/dataflow/Table1Test.cpp - Reproduces the paper's Table 1 ----===//
//
// The central fidelity test: runs must-reaching definitions on the
// running example of Fig. 1 and checks every tuple of Table 1 — the
// initialization pass, both iterate passes, and the fixed point.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Framework.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <map>

using namespace ardf;

namespace {

/// The loop of Fig. 1.
const char *Fig1Source = R"(
  do i = 1, 1000 {
    C[i+2] = C[i] * 2;
    B[2*i] = C[i] + X;
    if (C[i] == 0) { C[i] = B[i-1]; }
    B[i] = C[i+1];
  }
)";

class Table1Test : public ::testing::Test {
protected:
  void SetUp() override {
    Prog = std::make_unique<Program>(parseOrDie(Fig1Source));
    Loop = Prog->getFirstLoop();
    ASSERT_NE(Loop, nullptr);
    Graph = std::make_unique<LoopFlowGraph>(*Loop);
    FW = std::make_unique<FrameworkInstance>(*Graph, *Prog,
                                             ProblemSpec::mustReachingDefs());
    SolverOptions Opts;
    Opts.RecordHistory = true;
    Result = solveDataFlow(*FW, Opts);

    // Map the paper's node numbers (1..4 statements, 5 exit) to graph ids.
    for (unsigned Id = 0; Id != Graph->getNumNodes(); ++Id) {
      unsigned Num = Graph->getNode(Id).StmtNumber;
      if (Num)
        PaperNode[Num] = Id;
    }
  }

  /// Formats a tuple of the recorded snapshot \p Pass (0 = init) at the
  /// paper's node \p Num.
  std::string at(unsigned Pass, unsigned Num, bool Out) const {
    const PassSnapshot &S = Result.History.at(Pass);
    unsigned Id = PaperNode.at(Num);
    return tupleToString(Out ? S.Out[Id] : S.In[Id]);
  }

  std::unique_ptr<Program> Prog;
  const DoLoopStmt *Loop = nullptr;
  std::unique_ptr<LoopFlowGraph> Graph;
  std::unique_ptr<FrameworkInstance> FW;
  SolveResult Result;
  std::map<unsigned, unsigned> PaperNode;
};

TEST_F(Table1Test, TrackedTupleMatchesPaperNumbering) {
  ASSERT_EQ(FW->getNumTracked(), 4u);
  EXPECT_EQ(FW->tupleHeader(), "(C[i + 2], B[2 * i], C[i], B[i])");
}

TEST_F(Table1Test, GraphShape) {
  // 4 statement nodes + 1 guard + exit.
  EXPECT_EQ(Graph->getNumNodes(), 6u);
  EXPECT_EQ(Graph->getNode(PaperNode.at(5)).Kind, FlowNodeKind::Exit);
}

TEST_F(Table1Test, FlowFunctionsMatchSection35) {
  // f3 kills C[i+2] beyond distance 1 and generates C[i].
  unsigned Node3 = PaperNode.at(3);
  EXPECT_EQ(FW->preserveAt(0, Node3), DistanceValue::finite(1));
  EXPECT_TRUE(FW->generatesAt(2, Node3));
  // f4 kills B[2*i] beyond distance 0 and generates B[i].
  unsigned Node4 = PaperNode.at(4);
  EXPECT_EQ(FW->preserveAt(1, Node4), DistanceValue::finite(0));
  EXPECT_TRUE(FW->generatesAt(3, Node4));
  // B[i] survives B[2*i] (k(i) = -i is never a positive distance).
  unsigned Node2 = PaperNode.at(2);
  EXPECT_TRUE(FW->preserveAt(3, Node2).isAllInstances());
  // C[i] survives C[i+2] (k(i) = -2).
  unsigned Node1 = PaperNode.at(1);
  EXPECT_TRUE(FW->preserveAt(2, Node1).isAllInstances());
}

TEST_F(Table1Test, InitializationPass) {
  // Table 1 (i).
  EXPECT_EQ(at(0, 1, false), "(_, _, _, _)");
  EXPECT_EQ(at(0, 1, true), "(T, _, _, _)");
  EXPECT_EQ(at(0, 2, false), "(T, _, _, _)");
  EXPECT_EQ(at(0, 2, true), "(T, T, _, _)");
  EXPECT_EQ(at(0, 3, false), "(T, T, _, _)");
  EXPECT_EQ(at(0, 3, true), "(T, T, T, _)");
  EXPECT_EQ(at(0, 4, false), "(T, T, _, _)");
  EXPECT_EQ(at(0, 4, true), "(T, T, _, T)");
  EXPECT_EQ(at(0, 5, true), "(T, T, _, T)");
}

TEST_F(Table1Test, FirstIteratePass) {
  // Table 1 (ii), first pass.
  EXPECT_EQ(at(1, 1, false), "(T, T, _, T)");
  EXPECT_EQ(at(1, 1, true), "(T, T, _, T)");
  EXPECT_EQ(at(1, 2, false), "(T, T, _, T)");
  EXPECT_EQ(at(1, 2, true), "(T, T, _, T)");
  EXPECT_EQ(at(1, 3, false), "(T, T, _, T)");
  EXPECT_EQ(at(1, 3, true), "(1, T, 0, T)");
  EXPECT_EQ(at(1, 4, false), "(1, T, _, T)");
  EXPECT_EQ(at(1, 4, true), "(1, 0, _, T)");
  EXPECT_EQ(at(1, 5, false), "(1, 0, _, T)");
  EXPECT_EQ(at(1, 5, true), "(2, 1, _, T)");
}

TEST_F(Table1Test, SecondIteratePassIsTheFixedPoint) {
  // Table 1 (ii), second pass.
  EXPECT_EQ(at(2, 1, false), "(2, 1, _, T)");
  EXPECT_EQ(at(2, 1, true), "(2, 1, _, T)");
  EXPECT_EQ(at(2, 2, false), "(2, 1, _, T)");
  EXPECT_EQ(at(2, 2, true), "(2, 1, _, T)");
  EXPECT_EQ(at(2, 3, false), "(2, 1, _, T)");
  EXPECT_EQ(at(2, 3, true), "(1, 1, 0, T)");
  EXPECT_EQ(at(2, 4, false), "(1, 1, _, T)");
  EXPECT_EQ(at(2, 4, true), "(1, 0, _, T)");
  EXPECT_EQ(at(2, 5, false), "(1, 0, _, T)");
  EXPECT_EQ(at(2, 5, true), "(2, 1, _, T)");
}

TEST_F(Table1Test, PaperScheduleReachesTheFixedPoint) {
  // A third pass must not change anything: the paper's 3N-visit bound.
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  SolveResult Stable = solveDataFlow(*FW, Opts);
  ASSERT_TRUE(Stable.Converged);
  EXPECT_EQ(Stable.In, Result.In);
  EXPECT_EQ(Stable.Out, Result.Out);
  // Convergence detected needs one no-change pass on top of the two
  // productive ones.
  EXPECT_LE(Stable.Passes, 3u);
}

TEST_F(Table1Test, NodeVisitBudget) {
  // Initialization + two passes = 3 * N node visits.
  EXPECT_EQ(Result.NodeVisits, 3 * Graph->getNumNodes());
  EXPECT_EQ(Result.Passes, 2u);
}

} // namespace
