//===- tests/dataflow/KernelSolverTest.cpp - Kernel vs reference oracle --===//
//
// The solver half of the packed-kernel guarantee: over a randomized
// loop corpus (the bench generator) and hand-picked boundary shapes,
// the PackedKernel engine must produce bit-identical SolveResult
// matrices to the Reference engine for all four paper problems (plus
// the per-occurrence variants), must and may, forward and backward,
// both pass strategies. The algebraic half (operator agreement of the
// packed encoding) lives in tests/lattice/PackedDistanceTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopAnalysisSession.h"
#include "dataflow/CompiledFlow.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

ProblemSpec allSpecs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
    ProblemSpec::reachingReferences(),
    ProblemSpec::availableValuesPerOccurrence(),
    ProblemSpec::busyStoresPerOccurrence(),
};

/// Hand shapes covering the corners the generator rarely hits: if/else
/// joins, nested-loop summaries, unknown trip counts, same-statement
/// kills, and a reference-free body.
const char *HandCorpus[] = {
    "do i = 1, 100 { A[i+2] = A[i] + X; }",
    "do i = 1, 5 { A[i+1] = A[i]; }", // tiny trip: saturation everywhere
    "do i = 1, N { A[i+1] = A[i] + A[i-1]; }", // unknown trip count
    "do i = 1, 50 { if (B[i] > 0) { A[i+1] = B[i]; } else { A[i+1] = 0; } "
    "C[i] = A[i] + B[i-2]; }",
    "do i = 1, 20 { A[i] = B[i] + B[i-1]; do j = 1, 5 { C[j] = A[i]; } "
    "B[i+2] = A[i-1]; }",
    "do i = 1, 100 { A[i] = A[i] + 1; }", // same-statement use and def
    "do i = 1, 10 { X = X + 1; }",        // nothing trackable
};

SolverOptions referenceOpts() { return SolverOptions(); }

SolverOptions packedOpts() {
  SolverOptions Opts;
  Opts.Eng = SolverOptions::Engine::PackedKernel;
  return Opts;
}

/// Solves \p Spec on the first loop of \p Source with both engines and
/// asserts bit-identical results.
void expectEnginesAgree(const std::string &Source, const ProblemSpec &Spec,
                        SolverOptions Opts) {
  Program P = parseOrDie(Source);
  const DoLoopStmt *Loop = P.getFirstLoop();
  ASSERT_NE(Loop, nullptr) << Source;
  LoopFlowGraph Graph(*Loop);
  FrameworkInstance FW(Graph, P, Spec);

  SolveResult Ref = solveDataFlow(FW, Opts);
  SolverOptions Packed = Opts;
  Packed.Eng = SolverOptions::Engine::PackedKernel;
  SolveResult Kern = solveDataFlow(FW, Packed);

  EXPECT_EQ(Kern.In, Ref.In) << Spec.Name << " on: " << Source;
  EXPECT_EQ(Kern.Out, Ref.Out) << Spec.Name << " on: " << Source;
  EXPECT_EQ(Kern.NodeVisits, Ref.NodeVisits) << Spec.Name;
  EXPECT_EQ(Kern.Passes, Ref.Passes) << Spec.Name;
  EXPECT_EQ(Kern.MeetOps, Ref.MeetOps) << Spec.Name;
  EXPECT_EQ(Kern.ApplyOps, Ref.ApplyOps) << Spec.Name;
  EXPECT_EQ(Kern.Converged, Ref.Converged) << Spec.Name;
}

} // namespace

TEST(KernelSolverTest, HandCorpusAllProblemsBothEngines) {
  for (const char *Source : HandCorpus)
    for (const ProblemSpec &Spec : allSpecs)
      expectEnginesAgree(Source, Spec, referenceOpts());
}

TEST(KernelSolverTest, RandomizedCorpusPaperSchedule) {
  for (unsigned Stmts : {4u, 9u, 17u, 33u})
    for (int Cond : {0, 25, 60})
      for (uint64_t Seed : {1u, 2u, 3u}) {
        std::string Source = ardfbench::makeSyntheticLoop(
            Stmts, 4, Cond, Seed * 7919 + Stmts * 31 + Cond, 1000);
        for (const ProblemSpec &Spec : allSpecs)
          expectEnginesAgree(Source, Spec, referenceOpts());
      }
}

TEST(KernelSolverTest, RandomizedCorpusIterateToFixpoint) {
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  for (unsigned Stmts : {6u, 21u})
    for (uint64_t Seed : {11u, 12u}) {
      std::string Source =
          ardfbench::makeSyntheticLoop(Stmts, 3, 30, Seed * 131 + Stmts, 500);
      for (const ProblemSpec &Spec : allSpecs)
        expectEnginesAgree(Source, Spec, Opts);
    }
}

TEST(KernelSolverTest, HistoryMatchesReference) {
  SolverOptions Opts;
  Opts.RecordHistory = true;
  Program P = parseOrDie(HandCorpus[3]);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, ProblemSpec::availableValues());

  SolveResult Ref = solveDataFlow(FW, Opts);
  Opts.Eng = SolverOptions::Engine::PackedKernel;
  SolveResult Kern = solveDataFlow(FW, Opts);

  ASSERT_EQ(Kern.History.size(), Ref.History.size());
  for (size_t I = 0; I != Ref.History.size(); ++I) {
    EXPECT_EQ(Kern.History[I].Label, Ref.History[I].Label);
    EXPECT_EQ(Kern.History[I].In, Ref.History[I].In);
    EXPECT_EQ(Kern.History[I].Out, Ref.History[I].Out);
  }
}

TEST(KernelSolverTest, WorkspaceAndFreshSolvesAgree) {
  Program P = parseOrDie(HandCorpus[3]);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    CompiledFlowProgram CF = CompiledFlowProgram::compile(FW);

    SolveResult Fresh = solveCompiled(CF);
    SolveWorkspace WS;
    // Twice through the workspace: the second run exercises warm reuse.
    solveCompiled(CF, WS);
    const SolveResult &Warm = solveCompiled(CF, WS);
    EXPECT_EQ(Warm.In, Fresh.In) << Spec.Name;
    EXPECT_EQ(Warm.Out, Fresh.Out) << Spec.Name;
    EXPECT_EQ(WS.matrixGrowths(), 1u) << Spec.Name;
    EXPECT_EQ(WS.solves(), 2u) << Spec.Name;

    // The generic workspace entry point dispatches to the same kernel.
    SolveWorkspace WS2;
    const SolveResult &Via = solveDataFlow(FW, WS2, packedOpts());
    EXPECT_EQ(Via.In, Fresh.In) << Spec.Name;
    EXPECT_EQ(Via.Out, Fresh.Out) << Spec.Name;
  }
}

TEST(KernelSolverTest, NarrowAndWideCellPathsSplitOnTripCount) {
  // Bounded trip counts narrow every packed constant, so the compiled
  // program takes the uint32_t kernel; an unknown trip count leaves
  // IncBound at AllInstances and must stay on the uint64_t kernel.
  // Both paths share one workspace (alternating widths) and both must
  // match the reference engine bit for bit.
  const char *Bounded = HandCorpus[0];
  const char *Unknown = HandCorpus[2];
  for (const ProblemSpec &Spec : allSpecs) {
    Program PB = parseOrDie(Bounded);
    LoopFlowGraph GB(*PB.getFirstLoop());
    FrameworkInstance FB(GB, PB, Spec);
    CompiledFlowProgram CFB = CompiledFlowProgram::compile(FB);
    EXPECT_TRUE(CFB.Narrow32) << Spec.Name;
    EXPECT_EQ(CFB.Preserve32.size(), CFB.Preserve.size()) << Spec.Name;

    Program PU = parseOrDie(Unknown);
    LoopFlowGraph GU(*PU.getFirstLoop());
    FrameworkInstance FU(GU, PU, Spec);
    CompiledFlowProgram CFU = CompiledFlowProgram::compile(FU);
    EXPECT_FALSE(CFU.Narrow32) << Spec.Name;
    EXPECT_TRUE(CFU.Preserve32.empty()) << Spec.Name;

    SolveResult RefB = solveDataFlow(FB, referenceOpts());
    SolveResult RefU = solveDataFlow(FU, referenceOpts());
    SolveWorkspace WS;
    const SolveResult &KB = solveCompiled(CFB, WS);
    EXPECT_EQ(KB.In, RefB.In) << Spec.Name;
    EXPECT_EQ(KB.Out, RefB.Out) << Spec.Name;
    const SolveResult &KU = solveCompiled(CFU, WS);
    EXPECT_EQ(KU.In, RefU.In) << Spec.Name;
    EXPECT_EQ(KU.Out, RefU.Out) << Spec.Name;
    // Back to the narrow program: warm reuse across a width switch.
    const SolveResult &KB2 = solveCompiled(CFB, WS);
    EXPECT_EQ(KB2.In, RefB.In) << Spec.Name;
    EXPECT_EQ(KB2.Out, RefB.Out) << Spec.Name;
    EXPECT_EQ(WS.solves(), 3u) << Spec.Name;
  }
}

TEST(KernelSolverTest, SessionMemoizesCompiledProgramsPerInstance) {
  Program P = parseOrDie(HandCorpus[3]);
  LoopAnalysisSession Session(P, *P.getFirstLoop());

  const CompiledFlowProgram &CF =
      Session.compiledFlow(ProblemSpec::availableValues());
  EXPECT_EQ(&CF, &Session.compiledFlow(ProblemSpec::availableValues()));
  EXPECT_NE(&CF, &Session.compiledFlow(ProblemSpec::busyStores()));

  // Engine-tagged solves are distinct cache entries with equal matrices.
  const SolveResult &Ref =
      Session.solve(ProblemSpec::availableValues(), referenceOpts());
  const SolveResult &Kern =
      Session.solve(ProblemSpec::availableValues(), packedOpts());
  EXPECT_NE(&Ref, &Kern);
  EXPECT_EQ(Session.solvesPerformed(), 2u);
  EXPECT_EQ(Kern.In, Ref.In);
  EXPECT_EQ(Kern.Out, Ref.Out);
  // Memoized: re-asking for the packed solve is free.
  EXPECT_EQ(&Kern, &Session.solve(ProblemSpec::availableValues(),
                                  packedOpts()));
  EXPECT_EQ(Session.solvesPerformed(), 2u);
}

TEST(KernelSolverTest, CompiledProgramOutlivesInstance) {
  // compile() copies everything it needs out of the instance.
  Program P = parseOrDie(HandCorpus[0]);
  LoopFlowGraph Graph(*P.getFirstLoop());
  SolveResult Ref;
  CompiledFlowProgram CF;
  {
    FrameworkInstance FW(Graph, P, ProblemSpec::mustReachingDefs());
    Ref = solveDataFlow(FW);
    CF = CompiledFlowProgram::compile(FW);
  }
  SolveResult Kern = solveCompiled(CF);
  EXPECT_EQ(Kern.In, Ref.In);
  EXPECT_EQ(Kern.Out, Ref.Out);
}
