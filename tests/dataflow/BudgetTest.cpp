//===- tests/dataflow/BudgetTest.cpp - Resource-governed solves ----------===//
//
// SolverBudget behavior on both engines: a breached ceiling (node
// visits, matrix cells, injected fault, non-convergence) must produce a
// degraded-but-sound result -- every cell at the conservative fill --
// tagged with the outcome and reason, identically across engines, and
// session caches must never serve a result computed under a different
// budget.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopAnalysisSession.h"
#include "frontend/Parser.h"
#include "support/FailPoint.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

const char *Fig1 = "array A[100]; array B[200]; array C[102];\n"
                   "do i = 1, 100 {\n"
                   "  C[i+2] = C[i] * 2;\n"
                   "  B[2*i] = C[i] + X;\n"
                   "  if (C[i] == 0) { C[i] = B[i-1]; }\n"
                   "  B[i] = C[i+1];\n"
                   "}\n";

/// Solves \p Spec on Fig1 under \p Opts with the given engine.
SolveResult solveFig1(const ProblemSpec &Spec, SolverOptions Opts,
                      SolverOptions::Engine Eng) {
  Program P = parseOrDie(Fig1);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, Spec);
  Opts.Eng = Eng;
  return solveDataFlow(FW, Opts);
}

/// Every cell of both matrices holds the conservative fill of the
/// problem: NoInstance for must, AllInstances for may.
void expectConservativeFill(const SolveResult &R, bool IsMust) {
  DistanceValue Fill =
      IsMust ? DistanceValue::noInstance() : DistanceValue::allInstances();
  ASSERT_FALSE(R.In.empty());
  for (unsigned N = 0; N != R.In.numNodes(); ++N)
    for (unsigned T = 0; T != R.In.numTracked(); ++T) {
      EXPECT_EQ(R.In[N][T], Fill) << "IN " << N << "," << T;
      EXPECT_EQ(R.Out[N][T], Fill) << "OUT " << N << "," << T;
    }
}

class BudgetTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::disarmAll(); }
  void TearDown() override { failpoint::disarmAll(); }
};

} // namespace

TEST_F(BudgetTest, DisabledBudgetChangesNothing) {
  SolverOptions Plain;
  SolverOptions Budgeted;
  Budgeted.Budget.VisitSlack = 1.0; // exactly the paper bound
  for (SolverOptions::Engine Eng :
       {SolverOptions::Engine::Reference,
        SolverOptions::Engine::PackedKernel})
    for (const ProblemSpec &Spec :
         {ProblemSpec::mustReachingDefs(), ProblemSpec::reachingReferences()}) {
      SolveResult A = solveFig1(Spec, Plain, Eng);
      SolveResult B = solveFig1(Spec, Budgeted, Eng);
      EXPECT_EQ(A.Outcome, SolveOutcome::Ok);
      EXPECT_EQ(B.Outcome, SolveOutcome::Ok);
      EXPECT_EQ(B.Breach, BreachReason::None);
      EXPECT_EQ(A.In, B.In) << Spec.Name;
      EXPECT_EQ(A.Out, B.Out) << Spec.Name;
      EXPECT_EQ(A.NodeVisits, B.NodeVisits) << Spec.Name;
    }
}

TEST_F(BudgetTest, VisitCapBreachDegradesBothEnginesIdentically) {
  SolverOptions Opts;
  Opts.Budget.MaxNodeVisits = 1; // breached right after initialization
  for (const ProblemSpec &Spec :
       {ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
        ProblemSpec::busyStores(), ProblemSpec::reachingReferences()}) {
    SolveResult Ref =
        solveFig1(Spec, Opts, SolverOptions::Engine::Reference);
    SolveResult Kern =
        solveFig1(Spec, Opts, SolverOptions::Engine::PackedKernel);
    for (const SolveResult *R : {&Ref, &Kern}) {
      EXPECT_EQ(R->Outcome, SolveOutcome::Degraded) << Spec.Name;
      EXPECT_EQ(R->Breach, BreachReason::NodeVisits) << Spec.Name;
      EXPECT_FALSE(R->ok());
      expectConservativeFill(*R, Spec.isMust());
    }
    EXPECT_EQ(Ref.In, Kern.In) << Spec.Name;
    EXPECT_EQ(Ref.Out, Kern.Out) << Spec.Name;
  }
}

TEST_F(BudgetTest, TightSlackDegradesUndersizedSchedule) {
  // Half the paper's visit budget cannot finish the schedule.
  SolverOptions Opts;
  Opts.Budget.VisitSlack = 0.5;
  SolveResult R = solveFig1(ProblemSpec::mustReachingDefs(), Opts,
                            SolverOptions::Engine::Reference);
  EXPECT_EQ(R.Outcome, SolveOutcome::Degraded);
  EXPECT_EQ(R.Breach, BreachReason::NodeVisits);
  expectConservativeFill(R, /*IsMust=*/true);
}

TEST_F(BudgetTest, MatrixCellCapDegradesWithoutSolving) {
  SolverOptions Opts;
  Opts.Budget.MaxMatrixCells = 2; // Fig1 needs far more
  for (SolverOptions::Engine Eng :
       {SolverOptions::Engine::Reference,
        SolverOptions::Engine::PackedKernel}) {
    SolveResult R = solveFig1(ProblemSpec::availableValues(), Opts, Eng);
    EXPECT_EQ(R.Outcome, SolveOutcome::Degraded);
    EXPECT_EQ(R.Breach, BreachReason::MatrixCells);
    // The result matrices are still fully shaped and filled: the API
    // stays total even when the solve itself was refused.
    expectConservativeFill(R, /*IsMust=*/true);
  }
}

TEST_F(BudgetTest, InjectedPassBreachDegradesBothEnginesIdentically) {
  for (SolverOptions::Engine Eng :
       {SolverOptions::Engine::Reference,
        SolverOptions::Engine::PackedKernel}) {
    failpoint::ScopedFailPoint FP("solver.pass", failpoint::Action::Breach,
                                  /*FireAt=*/2);
    SolveResult R =
        solveFig1(ProblemSpec::reachingReferences(), SolverOptions(), Eng);
    EXPECT_EQ(R.Outcome, SolveOutcome::Degraded);
    EXPECT_EQ(R.Breach, BreachReason::FaultInjected);
    expectConservativeFill(R, /*IsMust=*/false);
  }
}

TEST_F(BudgetTest, StalledPassMissesDeadline) {
  // A 25ms stall at the pass boundary against a 1ms deadline: the next
  // budget check deterministically reports Deadline.
  SolverOptions Opts;
  Opts.Budget.DeadlineNs = 1000000; // 1ms
  failpoint::ScopedFailPoint FP("solver.pass", failpoint::Action::Stall,
                                /*FireAt=*/1, /*StallMs=*/25);
  SolveResult R = solveFig1(ProblemSpec::mustReachingDefs(), Opts,
                            SolverOptions::Engine::Reference);
  EXPECT_EQ(R.Outcome, SolveOutcome::Degraded);
  EXPECT_EQ(R.Breach, BreachReason::Deadline);
  expectConservativeFill(R, /*IsMust=*/true);
}

TEST_F(BudgetTest, FixpointExhaustionIsDegradedNonConvergence) {
  // Satellite: SolveResult::Converged surfaced end to end. One pass is
  // never enough in fixpoint mode, and both engines must agree.
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  Opts.MaxPasses = 1;
  for (SolverOptions::Engine Eng :
       {SolverOptions::Engine::Reference,
        SolverOptions::Engine::PackedKernel}) {
    SolveResult R = solveFig1(ProblemSpec::availableValues(), Opts, Eng);
    EXPECT_FALSE(R.Converged);
    EXPECT_EQ(R.Outcome, SolveOutcome::Degraded);
    EXPECT_EQ(R.Breach, BreachReason::NonConvergence);
  }
}

TEST_F(BudgetTest, SessionCacheIsKeyedByBudget) {
  Program P = parseOrDie(Fig1);
  LoopAnalysisSession Session(P, *P.getFirstLoop());

  SolverOptions Plain;
  SolverOptions Tight;
  Tight.Budget.MaxNodeVisits = 1;

  const SolveResult &Exact =
      Session.solve(ProblemSpec::mustReachingDefs(), Plain);
  EXPECT_EQ(Exact.Outcome, SolveOutcome::Ok);
  DistanceMatrix ExactIn = Exact.In;

  // The budgeted solve must not be served from the unbudgeted cache.
  const SolveResult &Degraded =
      Session.solve(ProblemSpec::mustReachingDefs(), Tight);
  EXPECT_EQ(Degraded.Outcome, SolveOutcome::Degraded);
  EXPECT_NE(Degraded.In, ExactIn);

  // And asking again without a budget returns the exact result.
  const SolveResult &Again =
      Session.solve(ProblemSpec::mustReachingDefs(), Plain);
  EXPECT_EQ(Again.Outcome, SolveOutcome::Ok);
  EXPECT_EQ(Again.In, ExactIn);
}

TEST_F(BudgetTest, TelemetryCountsBreachesAndExcludesDegradedFromBounds) {
  telem::Telemetry T;
  {
    telem::TelemetryScope Scope(T);
    SolverOptions Tight;
    Tight.Budget.MaxNodeVisits = 1;
    solveFig1(ProblemSpec::mustReachingDefs(), Tight,
              SolverOptions::Engine::Reference);
    solveFig1(ProblemSpec::mustReachingDefs(), SolverOptions(),
              SolverOptions::Engine::Reference);
  }
  EXPECT_EQ(T.get(telem::Counter::DegradedSolves), 1u);
  EXPECT_EQ(T.get(telem::Counter::BudgetBreaches), 1u);
  // The 3N bound-equality invariant stays exact because degraded solves
  // are excluded from the must-visit counters.
  EXPECT_EQ(T.get(telem::Counter::MustNodeVisits),
            T.get(telem::Counter::MustVisitBound));
}
