//===- tests/dataflow/ProvenanceTest.cpp - Provenance replay oracle ------===//
//
// The provenance guarantee, in three parts. (1) Replay oracle: a
// recorded derivation re-applied step by step from its own constants
// and meet operands must reproduce every recorded cell bit-for-bit --
// over a randomized corpus, for all paper problems (plus the
// per-occurrence variants) and both pass strategies. (2) Engine
// forcing: a provenance solve runs the reference engine no matter which
// engine was requested, and its solution is bit-identical to every fast
// engine's. (3) The off switch: without RecordProvenance no recording
// exists, so the fast paths stay untouched.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "dataflow/Framework.h"
#include "dataflow/Provenance.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

ProblemSpec allSpecs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
    ProblemSpec::reachingReferences(),
    ProblemSpec::availableValuesPerOccurrence(),
    ProblemSpec::busyStoresPerOccurrence(),
};

const char *HandCorpus[] = {
    "do i = 1, 100 { A[i+2] = A[i] + X; }",
    "do i = 1, 5 { A[i+1] = A[i]; }",
    "do i = 1, N { A[i+1] = A[i] + A[i-1]; }",
    "do i = 1, 50 { if (B[i] > 0) { A[i+1] = B[i]; } else { A[i+1] = 0; } "
    "C[i] = A[i] + B[i-2]; }",
    "do i = 1, 20 { A[i] = B[i] + B[i-1]; do j = 1, 5 { C[j] = A[i]; } "
    "B[i+2] = A[i-1]; }",
    "do i = 1, 100 { A[i] = A[i] + 1; }",
    "do i = 1, 10 { X = X + 1; }",
};

SolverOptions provenanceOpts() {
  SolverOptions Opts;
  Opts.RecordProvenance = true;
  return Opts;
}

/// Solves \p Spec with recording and replays the full derivation.
void expectReplays(const std::string &Source, const ProblemSpec &Spec,
                   SolverOptions Opts) {
  Program P = parseOrDie(Source);
  const DoLoopStmt *Loop = P.getFirstLoop();
  ASSERT_NE(Loop, nullptr) << Source;
  LoopFlowGraph Graph(*Loop);
  FrameworkInstance FW(Graph, P, Spec);
  Opts.RecordProvenance = true;
  SolveResult R = solveDataFlow(FW, Opts);
  ASSERT_NE(R.Provenance, nullptr) << Spec.Name;
  std::string WhyNot;
  EXPECT_TRUE(replayProvenance(*R.Provenance, &WhyNot))
      << Spec.Name << ": " << WhyNot << "\n"
      << Source;
}

} // namespace

TEST(ProvenanceTest, ReplayOracleHandCorpus) {
  for (const char *Source : HandCorpus)
    for (const ProblemSpec &Spec : allSpecs)
      expectReplays(Source, Spec, SolverOptions());
}

TEST(ProvenanceTest, ReplayOracleRandomizedCorpus) {
  for (unsigned Stmts : {3u, 11u, 26u})
    for (int Cond : {0, 35})
      for (uint64_t Seed : {1u, 5u, 9u}) {
        std::string Source = ardfbench::makeSyntheticLoop(
            Stmts, 4, Cond, Seed * 6151 + Stmts * 17 + Cond, 1000);
        for (const ProblemSpec &Spec : allSpecs)
          expectReplays(Source, Spec, SolverOptions());
      }
}

TEST(ProvenanceTest, ReplayOracleFixpointStrategy) {
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  for (unsigned Stmts : {5u, 14u}) {
    std::string Source =
        ardfbench::makeSyntheticLoop(Stmts, 3, 25, 271u + Stmts, 500);
    for (const ProblemSpec &Spec : allSpecs)
      expectReplays(Source, Spec, Opts);
  }
}

TEST(ProvenanceTest, RecordingForcesReferenceEngineBitIdentical) {
  // A provenance solve must land on the reference path regardless of
  // the requested engine, and the result must equal every fast
  // engine's -- the cross-check contract explain flows rely on.
  std::string Source = ardfbench::makeSyntheticLoop(19, 4, 30, 977, 800);
  Program P = parseOrDie(Source);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    for (SolverOptions::Engine Eng :
         {SolverOptions::Engine::Reference,
          SolverOptions::Engine::PackedKernel,
          SolverOptions::Engine::PackedSimd,
          SolverOptions::Engine::Summary}) {
      SolverOptions Prov = provenanceOpts();
      Prov.Eng = Eng;
      SolveResult Recorded = solveDataFlow(FW, Prov);
      ASSERT_NE(Recorded.Provenance, nullptr) << Spec.Name;
      EXPECT_FALSE(Recorded.Provenance->Degraded);

      SolverOptions Fast;
      Fast.Eng = Eng;
      SolveResult Plain = solveDataFlow(FW, Fast);
      EXPECT_EQ(Recorded.In, Plain.In) << Spec.Name;
      EXPECT_EQ(Recorded.Out, Plain.Out) << Spec.Name;
    }
  }
}

TEST(ProvenanceTest, NoRecordingWithoutTheFlag) {
  Program P = parseOrDie(HandCorpus[0]);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    for (SolverOptions::Engine Eng :
         {SolverOptions::Engine::Reference,
          SolverOptions::Engine::PackedKernel}) {
      SolverOptions Opts;
      Opts.Eng = Eng;
      SolveResult R = solveDataFlow(FW, Opts);
      EXPECT_EQ(R.Provenance, nullptr) << Spec.Name;
    }
  }
}

TEST(ProvenanceTest, RecordedCellsMatchTheSolution) {
  // The last recorded layer IS the returned solution.
  Program P = parseOrDie(HandCorpus[3]);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    SolveResult R = solveDataFlow(FW, provenanceOpts());
    ASSERT_NE(R.Provenance, nullptr);
    const SolveProvenance &Prov = *R.Provenance;
    ASSERT_EQ(Prov.Passes + 1,
              static_cast<unsigned>(Prov.CellIn.size() /
                                    (Prov.NumNodes * Prov.NumTracked == 0
                                         ? 1
                                         : Prov.NumNodes * Prov.NumTracked)))
        << Spec.Name;
    for (unsigned N = 0; N != Prov.NumNodes; ++N)
      for (unsigned D = 0; D != Prov.NumTracked; ++D) {
        EXPECT_EQ(Prov.in(Prov.Passes, N, D), R.In[N][D]) << Spec.Name;
        EXPECT_EQ(Prov.out(Prov.Passes, N, D), R.Out[N][D]) << Spec.Name;
      }
  }
}

TEST(ProvenanceTest, DerivationBuildsForEveryCell) {
  // Building the derivation DAG of every (node, tracked, side) cell
  // must succeed, the root's value must equal the recorded cell, and
  // the trail and JSON serializations must be well-formed.
  std::string Source = ardfbench::makeSyntheticLoop(9, 3, 30, 31337, 400);
  Program P = parseOrDie(Source);
  LoopFlowGraph Graph(*P.getFirstLoop());
  for (const ProblemSpec &Spec : allSpecs) {
    FrameworkInstance FW(Graph, P, Spec);
    SolveResult R = solveDataFlow(FW, provenanceOpts());
    ASSERT_NE(R.Provenance, nullptr);
    const SolveProvenance &Prov = *R.Provenance;
    for (unsigned N = 0; N != Prov.NumNodes; ++N)
      for (unsigned D = 0; D != Prov.NumTracked; ++D)
        for (bool IsIn : {true, false}) {
          DerivationGraph G = buildDerivation(Prov, N, D, IsIn);
          ASSERT_FALSE(G.Nodes.empty());
          DistanceValue Expected =
              IsIn ? Prov.in(Prov.Passes, N, D) : Prov.out(Prov.Passes, N, D);
          EXPECT_EQ(G.root().Value, Expected) << Spec.Name;
          EXPECT_FALSE(derivationTrail(Prov, G).empty()) << Spec.Name;
          std::string Json = derivationToJson(Prov, G);
          ASSERT_FALSE(Json.empty());
          EXPECT_EQ(Json.front(), '{');
          EXPECT_EQ(Json.back(), '}');
        }
  }
}

TEST(ProvenanceTest, DegradedRecordingIsMarkedAndReplaysVacuously) {
  // A budget breach mid-solve leaves a partial recording; it must be
  // flagged Degraded and replay must not crash (vacuous pass).
  std::string Source = ardfbench::makeSyntheticLoop(20, 4, 30, 555, 900);
  Program P = parseOrDie(Source);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, ProblemSpec::mustReachingDefs());
  SolverOptions Opts = provenanceOpts();
  Opts.Budget.MaxNodeVisits = 2;
  SolveResult R = solveDataFlow(FW, Opts);
  ASSERT_FALSE(R.ok());
  ASSERT_NE(R.Provenance, nullptr);
  EXPECT_TRUE(R.Provenance->Degraded);
  EXPECT_TRUE(replayProvenance(*R.Provenance));
}

TEST(ProvenanceTest, TamperedRecordingFailsReplay) {
  // The oracle is not vacuous: corrupting one recorded cell must be
  // caught by replay.
  Program P = parseOrDie(HandCorpus[0]);
  LoopFlowGraph Graph(*P.getFirstLoop());
  FrameworkInstance FW(Graph, P, ProblemSpec::mustReachingDefs());
  SolveResult R = solveDataFlow(FW, provenanceOpts());
  ASSERT_NE(R.Provenance, nullptr);
  ASSERT_FALSE(R.Provenance->CellOut.empty());
  SolveProvenance Tampered = *R.Provenance;
  size_t Last = Tampered.CellOut.size() - 1;
  Tampered.CellOut[Last] = Tampered.CellOut[Last].isAllInstances()
                               ? DistanceValue::finite(7)
                               : DistanceValue::allInstances();
  std::string WhyNot;
  EXPECT_FALSE(replayProvenance(Tampered, &WhyNot));
  EXPECT_FALSE(WhyNot.empty());
}
