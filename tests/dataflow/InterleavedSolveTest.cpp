//===- tests/dataflow/InterleavedSolveTest.cpp - SoA group solves --------===//
//
// The interleaved-vs-independent guarantee: fusing same-direction
// problems into one CompiledFlowGroup and sweeping them in a single
// structure-of-arrays pass must be bit-identical -- matrices, visit
// counts, operation counters, and budget degradation included -- to
// solving each compiled program on its own. Covers the raw group
// solver, the session's solveInterleaved entry, workspace reuse, the
// group cache stats, and the driver's batched PackedSimd path. The CI
// matrix re-runs this binary once per tier via ARDF_FORCE_ISA.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/LoopAnalysisSession.h"
#include "dataflow/CompiledFlow.h"
#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

std::vector<ProblemSpec> forwardSpecs() {
  return {ProblemSpec::mustReachingDefs(), ProblemSpec::availableValues(),
          ProblemSpec::reachingReferences(),
          ProblemSpec::availableValuesPerOccurrence()};
}

std::vector<ProblemSpec> backwardSpecs() {
  return {ProblemSpec::busyStores(), ProblemSpec::busyStoresPerOccurrence()};
}

std::vector<ProblemSpec> allSpecs() {
  std::vector<ProblemSpec> Specs = forwardSpecs();
  for (const ProblemSpec &S : backwardSpecs())
    Specs.push_back(S);
  return Specs;
}

std::string corpusLoop(unsigned Stmts, uint64_t Seed) {
  return ardfbench::makeSyntheticLoop(Stmts, 4, 35, Seed, 1000);
}

void expectSameResult(const SolveResult &Got, const SolveResult &Want,
                      const std::string &Label) {
  EXPECT_EQ(Got.In, Want.In) << Label;
  EXPECT_EQ(Got.Out, Want.Out) << Label;
  EXPECT_EQ(Got.NodeVisits, Want.NodeVisits) << Label;
  EXPECT_EQ(Got.Passes, Want.Passes) << Label;
  EXPECT_EQ(Got.MeetOps, Want.MeetOps) << Label;
  EXPECT_EQ(Got.ApplyOps, Want.ApplyOps) << Label;
  EXPECT_EQ(Got.Converged, Want.Converged) << Label;
  EXPECT_EQ(Got.Outcome, Want.Outcome) << Label;
  EXPECT_EQ(Got.Breach, Want.Breach) << Label;
}

/// Compiles \p Specs into one group via \p S and asserts the group
/// solve reproduces every member's independent solveCompiled under
/// \p Opts.
void expectGroupMatchesIndependent(LoopAnalysisSession &S,
                                   const std::vector<ProblemSpec> &Specs,
                                   const SolverOptions &Opts) {
  const CompiledFlowGroup &G = S.compiledFlowGroup(Specs);
  ASSERT_EQ(G.Members.size(), Specs.size());
  std::vector<SolveResult> Group = solveCompiledGroup(G, Opts);
  ASSERT_EQ(Group.size(), Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I) {
    SolveResult Solo = solveCompiled(S.compiledFlow(Specs[I]), Opts);
    expectSameResult(Group[I], Solo, Specs[I].Name);
  }
}

} // namespace

TEST(InterleavedSolveTest, GroupMatchesIndependentSolves) {
  for (uint64_t Seed : {11u, 12u, 13u}) {
    Program P = parseOrDie(corpusLoop(19, Seed));
    LoopAnalysisSession S(P, *P.getFirstLoop());
    expectGroupMatchesIndependent(S, forwardSpecs(), SolverOptions());
    expectGroupMatchesIndependent(S, backwardSpecs(), SolverOptions());
  }
}

TEST(InterleavedSolveTest, WideCellGroupMatchesIndependentSolves) {
  // An unknown trip count pins IncBound at AllInstances, which is not
  // narrowable: the group (like each member) must stay on the uint64_t
  // kernel and still reproduce the independent solves.
  std::string Source = corpusLoop(19, 11);
  size_t Bound = Source.find("1000");
  ASSERT_NE(Bound, std::string::npos);
  Source.replace(Bound, 4, "N");
  Program P = parseOrDie(Source);
  LoopAnalysisSession S(P, *P.getFirstLoop());
  const CompiledFlowGroup &G = S.compiledFlowGroup(forwardSpecs());
  EXPECT_FALSE(G.Narrow32);
  EXPECT_FALSE(S.compiledFlow(forwardSpecs()[0]).Narrow32);
  expectGroupMatchesIndependent(S, forwardSpecs(), SolverOptions());
  expectGroupMatchesIndependent(S, backwardSpecs(), SolverOptions());
}

TEST(InterleavedSolveTest, NarrowCellGroupFlagAndIndependentAgreement) {
  // The bounded-trip corpus narrows every member, so the fused group
  // narrows too; identity with independent (equally narrowed) solves
  // is the same oracle as GroupMatchesIndependentSolves.
  Program P = parseOrDie(corpusLoop(19, 11));
  LoopAnalysisSession S(P, *P.getFirstLoop());
  const CompiledFlowGroup &G = S.compiledFlowGroup(forwardSpecs());
  EXPECT_TRUE(G.Narrow32);
  EXPECT_EQ(G.Preserve32.size(), G.Preserve.size());
  expectGroupMatchesIndependent(S, forwardSpecs(), SolverOptions());
}

TEST(InterleavedSolveTest, GroupMatchesIndependentUnderBudgets) {
  Program P = parseOrDie(corpusLoop(23, 77));
  LoopAnalysisSession S(P, *P.getFirstLoop());

  // Deterministic budgets only: visit caps, the slack factor, and the
  // cell cap degrade (or admit) each member exactly as an independent
  // solve would. Deadlines and failpoints are timing/order dependent
  // and are deliberately not asserted here.
  SolverOptions Tight;
  Tight.Budget.MaxNodeVisits = 1; // breaches at the first boundary
  expectGroupMatchesIndependent(S, forwardSpecs(), Tight);
  expectGroupMatchesIndependent(S, backwardSpecs(), Tight);

  SolverOptions Slack;
  Slack.Budget.VisitSlack = 0.4; // below the paper's own schedule
  expectGroupMatchesIndependent(S, forwardSpecs(), Slack);

  SolverOptions Cells;
  Cells.Budget.MaxMatrixCells = 200; // mixed: wide members breach,
                                     // narrow members stay exact
  expectGroupMatchesIndependent(S, forwardSpecs(), Cells);
  expectGroupMatchesIndependent(S, backwardSpecs(), Cells);

  SolverOptions Roomy;
  Roomy.Budget.MaxNodeVisits = 1000000;
  expectGroupMatchesIndependent(S, forwardSpecs(), Roomy);
}

TEST(InterleavedSolveTest, WorkspaceReuseIsAllocationFreeWhenWarm) {
  Program P = parseOrDie(corpusLoop(15, 5));
  LoopAnalysisSession S(P, *P.getFirstLoop());
  const CompiledFlowGroup &G = S.compiledFlowGroup(forwardSpecs());

  GroupSolveWorkspace WS;
  const std::vector<SolveResult> &First = solveCompiledGroup(G, WS);
  std::vector<SolveResult> Cold = solveCompiledGroup(G);
  ASSERT_EQ(First.size(), Cold.size());
  for (size_t I = 0; I != Cold.size(); ++I)
    expectSameResult(First[I], Cold[I], G.Members[I].ProblemName);

  const std::vector<SolveResult> &Second = solveCompiledGroup(G, WS);
  for (size_t I = 0; I != Cold.size(); ++I)
    expectSameResult(Second[I], Cold[I], G.Members[I].ProblemName);
  EXPECT_EQ(WS.solves(), 2u);
  EXPECT_EQ(WS.matrixGrowths(), 1u); // only the cold solve allocated
}

TEST(InterleavedSolveTest, SolveInterleavedMatchesSolve) {
  std::string Source = corpusLoop(21, 42);
  SolverOptions Opts;
  Opts.Eng = SolverOptions::Engine::PackedSimd;

  Program PA = parseOrDie(Source);
  LoopAnalysisSession A(PA, *PA.getFirstLoop());
  std::vector<ProblemSpec> Specs = allSpecs();
  std::vector<const SolveResult *> Batch = A.solveInterleaved(Specs, Opts);
  ASSERT_EQ(Batch.size(), Specs.size());

  Program PB = parseOrDie(Source);
  LoopAnalysisSession B(PB, *PB.getFirstLoop());
  for (size_t I = 0; I != Specs.size(); ++I) {
    ASSERT_NE(Batch[I], nullptr);
    expectSameResult(*Batch[I], B.solve(Specs[I], Opts), Specs[I].Name);
  }

  // The batch results are the session's memoized solutions: a later
  // solve() of the same spec returns the same object.
  for (size_t I = 0; I != Specs.size(); ++I)
    EXPECT_EQ(&A.solve(Specs[I], Opts), Batch[I]) << Specs[I].Name;
}

TEST(InterleavedSolveTest, SolveInterleavedHandlesDuplicatesAndSingles) {
  Program P = parseOrDie(corpusLoop(13, 9));
  LoopAnalysisSession S(P, *P.getFirstLoop());
  SolverOptions Opts;
  Opts.Eng = SolverOptions::Engine::PackedSimd;

  // Duplicates collapse to one solve each; every occurrence gets the
  // same memoized pointer.
  std::vector<ProblemSpec> Specs = {
      ProblemSpec::availableValues(), ProblemSpec::busyStores(),
      ProblemSpec::availableValues(), ProblemSpec::busyStores()};
  std::vector<const SolveResult *> Batch = S.solveInterleaved(Specs, Opts);
  ASSERT_EQ(Batch.size(), 4u);
  EXPECT_EQ(Batch[0], Batch[2]);
  EXPECT_EQ(Batch[1], Batch[3]);

  // A single spec (or an empty list) degenerates without grouping.
  std::vector<const SolveResult *> One =
      S.solveInterleaved({ProblemSpec::mustReachingDefs()}, Opts);
  ASSERT_EQ(One.size(), 1u);
  EXPECT_EQ(One[0], &S.solve(ProblemSpec::mustReachingDefs(), Opts));
  EXPECT_TRUE(S.solveInterleaved({}, Opts).empty());
}

TEST(InterleavedSolveTest, SolveInterleavedFallsBackOffPaperSchedule) {
  std::string Source = corpusLoop(14, 3);
  Program PA = parseOrDie(Source);
  LoopAnalysisSession A(PA, *PA.getFirstLoop());
  SolverOptions Fix;
  Fix.Eng = SolverOptions::Engine::PackedSimd;
  Fix.Strat = SolverOptions::Strategy::IterateToFixpoint;
  std::vector<ProblemSpec> Specs = allSpecs();
  std::vector<const SolveResult *> Batch = A.solveInterleaved(Specs, Fix);
  ASSERT_EQ(Batch.size(), Specs.size());
  EXPECT_EQ(A.cacheStats().GroupMisses, 0u); // no fusing off-schedule

  Program PB = parseOrDie(Source);
  LoopAnalysisSession B(PB, *PB.getFirstLoop());
  for (size_t I = 0; I != Specs.size(); ++I)
    expectSameResult(*Batch[I], B.solve(Specs[I], Fix), Specs[I].Name);
}

TEST(InterleavedSolveTest, GroupCacheStats) {
  Program P = parseOrDie(corpusLoop(17, 21));
  LoopAnalysisSession S(P, *P.getFirstLoop());
  SolverOptions Opts;
  Opts.Eng = SolverOptions::Engine::PackedSimd;

  std::vector<ProblemSpec> Specs = allSpecs();
  S.solveInterleaved(Specs, Opts);
  SessionCacheStats St = S.cacheStats();
  // One fused group per direction (4 forward members, 2 backward).
  EXPECT_EQ(St.GroupMisses, 2u);
  EXPECT_EQ(St.GroupHits, 0u);
  // Every spec was a fresh solve (inserted by the group pass) and then
  // served once from the cache by the fill pass.
  EXPECT_EQ(St.SolutionMisses, 6u);
  EXPECT_EQ(St.SolutionHits, 6u);

  // A second batch is pure cache: no new groups, no new solves.
  S.solveInterleaved(Specs, Opts);
  St = S.cacheStats();
  EXPECT_EQ(St.GroupMisses, 2u);
  EXPECT_EQ(St.SolutionMisses, 6u);
  EXPECT_EQ(St.SolutionHits, 12u);

  // Re-requesting the fused groups hits the group cache.
  S.compiledFlowGroup(forwardSpecs());
  EXPECT_EQ(S.cacheStats().GroupHits, 1u);
}

TEST(InterleavedSolveTest, DriverSimdMatchesPackedKernel) {
  std::string Source = corpusLoop(18, 64) + "\n" + corpusLoop(9, 65);
  SolverBudget Budgets[] = {SolverBudget{}, [] {
                              SolverBudget B;
                              B.MaxNodeVisits = 8;
                              return B;
                            }()};
  for (const SolverBudget &Budget : Budgets) {
    Program PA = parseOrDie(Source);
    DriverOptions Packed;
    Packed.Solver.Eng = SolverOptions::Engine::PackedKernel;
    Packed.Solver.Budget = Budget;
    ProgramAnalysisDriver DA(PA, Packed);
    DA.run();

    Program PB = parseOrDie(Source);
    DriverOptions Simd = Packed;
    Simd.Solver.Eng = SolverOptions::Engine::PackedSimd;
    ProgramAnalysisDriver DB(PB, Simd);
    DB.run();

    ASSERT_EQ(DB.loops().size(), DA.loops().size());
    EXPECT_EQ(DB.totalNodeVisits(), DA.totalNodeVisits());
    for (size_t I = 0; I != DA.loops().size(); ++I) {
      EXPECT_EQ(DB.loops()[I].Status, DA.loops()[I].Status) << I;
      EXPECT_EQ(DB.loops()[I].Breach, DA.loops()[I].Breach) << I;
      EXPECT_EQ(DB.loops()[I].NodeVisits, DA.loops()[I].NodeVisits) << I;
    }
    DriverReport RA = DA.report(), RB = DB.report();
    EXPECT_EQ(RB.Ok, RA.Ok);
    EXPECT_EQ(RB.Degraded, RA.Degraded);
    EXPECT_EQ(RB.Failed, RA.Failed);
  }
}
