//===- tests/dataflow/SolverTest.cpp - Solver strategies and workspace ---===//

#include "dataflow/Framework.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace ardf;

namespace {

const char *Corpus[] = {
    "do i = 1, 100 { A[i+2] = A[i] + X; }",
    "do i = 1, 1000 { A[i] = i; if (A[i] > 0) { A[i+1] = 99; } }",
    "do i = 1, 50 { if (B[i] > 0) { A[i+1] = B[i]; } else { A[i+1] = 0; } "
    "C[i] = A[i] + B[i-2]; }",
    "do i = 1, 10 { A[i] = B[i] + B[i-1]; B[i+3] = A[i-1]; "
    "if (A[i-2] > 5) { B[i] = 0; } }",
};

ProblemSpec Specs[] = {
    ProblemSpec::mustReachingDefs(),
    ProblemSpec::availableValues(),
    ProblemSpec::busyStores(),
    ProblemSpec::reachingReferences(),
};

struct Built {
  Program Prog;
  std::unique_ptr<LoopFlowGraph> Graph;
  std::unique_ptr<FrameworkInstance> FW;
};

Built build(const char *Source, ProblemSpec Spec) {
  Built B{parseOrDie(Source), nullptr, nullptr};
  const DoLoopStmt *Loop = B.Prog.getFirstLoop();
  EXPECT_NE(Loop, nullptr);
  B.Graph = std::make_unique<LoopFlowGraph>(*Loop);
  B.FW = std::make_unique<FrameworkInstance>(*B.Graph, B.Prog, Spec);
  return B;
}

} // namespace

TEST(SolverTest, NonConvergenceIsReported) {
  // The loop-carried reuse needs the exit increment to wrap around the
  // back edge, so the first iterate pass after initialization always
  // changes values; a budget of one pass cannot confirm stability.
  Built B = build(Corpus[0], ProblemSpec::mustReachingDefs());
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  Opts.MaxPasses = 1;
  SolveResult R = solveDataFlow(*B.FW, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Passes, 1u);
}

TEST(SolverTest, NonConvergenceThroughWorkspace) {
  Built B = build(Corpus[1], ProblemSpec::availableValues());
  SolverOptions Opts;
  Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
  Opts.MaxPasses = 1;
  SolveWorkspace WS;
  const SolveResult &R = solveDataFlow(*B.FW, WS, Opts);
  EXPECT_FALSE(R.Converged);
  // A converged follow-up through the same workspace must clear the
  // stale flag.
  Opts.MaxPasses = 64;
  EXPECT_TRUE(solveDataFlow(*B.FW, WS, Opts).Converged);
}

TEST(SolverTest, FixpointWithBudgetMatchesPaperSchedule) {
  for (const char *Source : Corpus)
    for (const ProblemSpec &Spec : Specs) {
      Built B = build(Source, Spec);
      SolveResult Paper = solveDataFlow(*B.FW);
      SolverOptions Opts;
      Opts.Strat = SolverOptions::Strategy::IterateToFixpoint;
      SolveResult Fix = solveDataFlow(*B.FW, Opts);
      EXPECT_TRUE(Fix.Converged) << Source << " / " << Spec.Name;
      EXPECT_EQ(Fix.In, Paper.In) << Source << " / " << Spec.Name;
      EXPECT_EQ(Fix.Out, Paper.Out) << Source << " / " << Spec.Name;
    }
}

TEST(SolverTest, WorkspaceSolveMatchesFreshSolve) {
  SolveWorkspace WS;
  unsigned Expected = 0;
  for (const char *Source : Corpus)
    for (const ProblemSpec &Spec : Specs) {
      Built B = build(Source, Spec);
      SolveResult Fresh = solveDataFlow(*B.FW);
      const SolveResult &Reused = solveDataFlow(*B.FW, WS);
      ++Expected;
      EXPECT_EQ(Reused.In, Fresh.In) << Source << " / " << Spec.Name;
      EXPECT_EQ(Reused.Out, Fresh.Out) << Source << " / " << Spec.Name;
      EXPECT_EQ(Reused.NodeVisits, Fresh.NodeVisits);
      EXPECT_EQ(Reused.Passes, Fresh.Passes);
      EXPECT_EQ(Reused.Converged, Fresh.Converged);
    }
  EXPECT_EQ(WS.solves(), Expected);
}

TEST(SolverTest, WorkspaceStopsGrowingOnceWarm) {
  Built Big = build(Corpus[3], ProblemSpec::reachingReferences());
  Built Small = build(Corpus[0], ProblemSpec::mustReachingDefs());

  SolveWorkspace WS;
  solveDataFlow(*Big.FW, WS);
  unsigned AfterFirst = WS.matrixGrowths();
  EXPECT_GE(AfterFirst, 1u);

  // Warm repeats and shrinks reuse capacity; only a shape larger than
  // anything seen before may grow again.
  for (int I = 0; I != 5; ++I) {
    solveDataFlow(*Big.FW, WS);
    solveDataFlow(*Small.FW, WS);
  }
  EXPECT_EQ(WS.matrixGrowths(), AfterFirst);
  EXPECT_EQ(WS.solves(), 11u);
}
