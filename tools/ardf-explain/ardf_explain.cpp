//===- tools/ardf-explain/ardf_explain.cpp - Solution derivation CLI ------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explains one solution cell of one data flow problem over one loop:
/// re-solves the problem through the reference engine with provenance
/// recording, cross-checks the result bit-identical against the
/// configured fast engine, and prints the cell's full derivation tree
/// (initialization seed, every meet with the losing values, every
/// preserve/kill, every back-edge increment, and the pass that settled
/// the value).
///
///   ardf-explain examples/programs/fig4.arf --problem may-reach \
///       --cell 'A[i-1]'
///   ardf-explain nested.arf --loop 1 --problem must-reach \
///       --cell 'B[i]' --node 2 --out
///
/// Exit codes: 0 success, 1 engine cross-check divergence or degraded
/// solve, 2 usage or I/O failure.
///
//===----------------------------------------------------------------------===//

#include "analysis/LoopAnalysisSession.h"
#include "analysis/LoopNest.h"
#include "dataflow/Provenance.h"
#include "frontend/Parser.h"
#include "support/BuildInfo.h"
#include "support/FileIO.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace ardf;

namespace {

struct CliOptions {
  std::string File;
  /// Index into the program's supported loops, in nest pre-order.
  unsigned LoopIndex = 0;
  std::string Problem;
  std::string Cell;
  /// Flow node to query; -1 = the problem's exit-node default.
  int Node = -1;
  /// Query the OUT side instead of IN.
  bool OutSide = false;
  /// Also emit the derivation DAG as compact JSON after the tree.
  bool Json = false;
  /// Fast engine to cross-check the reference re-solve against.
  SolverOptions::Engine Engine = SolverOptions::Engine::PackedKernel;
  uint64_t MaxInputBytes = io::DefaultMaxInputBytes;
};

int usage(std::ostream &OS, int Code) {
  OS << "usage: ardf-explain <file.arf> --problem NAME --cell REF "
        "[options]\n"
        "\n"
        "Prints the derivation of one solution cell: how the data flow\n"
        "framework arrived at the cell's iteration-distance value, step\n"
        "by step (seed, meets with losing values, kills, back-edge\n"
        "increments, settling pass). The explaining re-solve runs the\n"
        "reference engine with provenance recording and is cross-checked\n"
        "bit-identical against the fast engine first.\n"
        "\n"
        "options:\n"
        "  --problem=NAME   one of: must-reach, avail, busy, may-reach\n"
        "                   (aliases: must-reaching-defs,\n"
        "                   available-values, busy-stores,\n"
        "                   reaching-references)\n"
        "  --cell=REF       the tracked reference, as rendered in\n"
        "                   diagnostics (e.g. 'A[i-1]'); when ambiguous\n"
        "                   or omitted the candidates are listed\n"
        "  --loop=N         Nth analyzable loop in nest pre-order\n"
        "                   (default 0)\n"
        "  --node=K         flow node to query (default: the loop exit)\n"
        "  --out            query the OUT side of the node (default IN)\n"
        "  --json           also print the derivation DAG as JSON\n"
        "  --engine=NAME    fast engine to cross-check against\n"
        "                   (default packed)\n"
        "  --max-input-bytes=N  input size cap (default 64MiB)\n"
        "  --version        print version and build type\n"
        "  --help           show this message\n"
        "\n"
        "exit codes: 0 success, 1 divergence/degraded, 2 usage/IO\n";
  return Code;
}

/// Maps a CLI problem name (or alias) to its spec. The per-occurrence
/// variants back avail/busy so every cell is one concrete reference.
bool resolveProblem(const std::string &Name, ProblemSpec &Out) {
  if (Name == "must-reach" || Name == "must-reaching-defs") {
    Out = ProblemSpec::mustReachingDefs();
    return true;
  }
  if (Name == "avail" || Name == "available-values") {
    Out = ProblemSpec::availableValuesPerOccurrence();
    return true;
  }
  if (Name == "busy" || Name == "busy-stores") {
    Out = ProblemSpec::busyStoresPerOccurrence();
    return true;
  }
  if (Name == "may-reach" || Name == "reaching-references") {
    Out = ProblemSpec::reachingReferences();
    return true;
  }
  return false;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts, std::string &Err) {
  auto Value = [](const std::string &Arg, const char *Name,
                  std::string &Out) {
    std::string Prefix = std::string(Name) + "=";
    if (Arg.rfind(Prefix, 0) != 0)
      return false;
    Out = Arg.substr(Prefix.size());
    return true;
  };
  std::string V;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Err = "help";
      return false;
    } else if (Arg == "--version") {
      Err = "version";
      return false;
    } else if (Value(Arg, "--problem", Opts.Problem) ||
               Value(Arg, "--cell", Opts.Cell)) {
      // stored by Value
    } else if (Value(Arg, "--loop", V)) {
      Opts.LoopIndex = static_cast<unsigned>(std::strtoul(V.c_str(),
                                                          nullptr, 10));
    } else if (Value(Arg, "--node", V)) {
      Opts.Node = std::atoi(V.c_str());
      if (Opts.Node < 0) {
        Err = "--node needs a non-negative integer";
        return false;
      }
    } else if (Arg == "--out") {
      Opts.OutSide = true;
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Value(Arg, "--engine", V)) {
      if (!parseEngineName(V, Opts.Engine)) {
        Err = "unknown engine '" + V + "' (expected one of: " +
              engineNameList() + ")";
        return false;
      }
    } else if (Value(Arg, "--max-input-bytes", V)) {
      Opts.MaxInputBytes = std::strtoull(V.c_str(), nullptr, 10);
    } else if ((Arg == "--problem" || Arg == "--cell" || Arg == "--loop" ||
                Arg == "--node" || Arg == "--engine") &&
               I + 1 < Argc) {
      // Space-separated form: --cell 'A[i-1]'.
      std::string Next = Argv[++I];
      if (Arg == "--problem")
        Opts.Problem = Next;
      else if (Arg == "--cell")
        Opts.Cell = Next;
      else if (Arg == "--loop")
        Opts.LoopIndex =
            static_cast<unsigned>(std::strtoul(Next.c_str(), nullptr, 10));
      else if (Arg == "--node")
        Opts.Node = std::atoi(Next.c_str());
      else if (!parseEngineName(Next, Opts.Engine)) {
        Err = "unknown engine '" + Next + "'";
        return false;
      }
    } else if (!Arg.empty() && Arg[0] == '-') {
      Err = "unknown option '" + Arg + "'";
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = std::move(Arg);
    } else {
      Err = "ardf-explain takes exactly one input file";
      return false;
    }
  }
  if (Opts.File.empty()) {
    Err = "no input file";
    return false;
  }
  if (Opts.Problem.empty()) {
    Err = "--problem is required";
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  std::string Err;
  if (!parseArgs(Argc, Argv, Opts, Err)) {
    if (Err == "help")
      return usage(std::cout, 0);
    if (Err == "version") {
      std::cout << toolVersionLine("ardf-explain") << "\n";
      return 0;
    }
    std::cerr << "ardf-explain: error: " << Err << "\n\n";
    return usage(std::cerr, 2);
  }

  ProblemSpec Spec = ProblemSpec::mustReachingDefs();
  if (!resolveProblem(Opts.Problem, Spec)) {
    std::cerr << "ardf-explain: error: unknown problem '" << Opts.Problem
              << "' (expected must-reach, avail, busy, or may-reach)\n";
    return 2;
  }

  std::string Text;
  std::string ReadDetail;
  io::ReadStatus RS =
      io::readInputFile(Opts.File, Text, Opts.MaxInputBytes, &ReadDetail);
  if (RS != io::ReadStatus::Ok) {
    std::cerr << "ardf-explain: error: "
              << io::describeReadError(RS, Opts.File, Opts.MaxInputBytes,
                                       ReadDetail)
              << "\n";
    return 2;
  }
  ParseResult Parsed = parseProgram(Text);
  if (!Parsed.succeeded()) {
    for (const ParseDiagnostic &PD : Parsed.Diags)
      std::cerr << Opts.File << ":" << PD.Line << ":" << PD.Col
                << ": error: " << PD.Message << "\n";
    return 2;
  }

  // Everything past the parse runs inside one fault boundary: a
  // malformed-but-parseable program must degrade to an error message,
  // never a crash (the fuzz torture path drives this tool too).
  try {
    LoopNestTree Nest(Parsed.Prog);
    const NestLoop *Chosen = nullptr;
    unsigned Supported = 0;
    for (const std::unique_ptr<NestLoop> &N : Nest.all()) {
      if (!N->isSupported())
        continue;
      if (Supported++ == Opts.LoopIndex) {
        Chosen = N.get();
        break;
      }
    }
    if (!Chosen) {
      std::cerr << "ardf-explain: error: --loop " << Opts.LoopIndex
                << " out of range; '" << Opts.File << "' has " << Supported
                << " analyzable loop(s)\n";
      return 2;
    }

    LoopAnalysisSession Session(Parsed.Prog, *Chosen->Analyzed);

    // Reference re-solve with recording, then the fast-engine solve it
    // must match bit for bit.
    SolverOptions ProvOpts;
    ProvOpts.RecordProvenance = true;
    const SolveResult &Recorded = Session.solve(Spec, ProvOpts);
    SolverOptions FastOpts;
    FastOpts.Eng = Opts.Engine;
    const SolveResult &Fast = Session.solve(Spec, FastOpts);
    if (!Recorded.ok() || !Recorded.Provenance ||
        Recorded.Provenance->Degraded) {
      std::cerr << "ardf-explain: error: the recording solve degraded ("
                << breachReasonName(Recorded.Breach)
                << "); nothing to explain\n";
      return 1;
    }
    if (Fast.ok() && !(Recorded.In == Fast.In && Recorded.Out == Fast.Out)) {
      std::cerr << "ardf-explain: error: reference re-solve diverged from "
                   "the fast engine on '"
                << Spec.Name << "'; this is an ardf bug\n";
      return 1;
    }
    const SolveProvenance &Prov = *Recorded.Provenance;

    // Resolve the cell by its rendered reference text.
    int Idx = -1;
    for (unsigned T = 0; T != Prov.Tracked.size(); ++T)
      if (Prov.Tracked[T].RefText == Opts.Cell)
        Idx = static_cast<int>(T);
    if (Idx < 0) {
      std::cerr << "ardf-explain: error: "
                << (Opts.Cell.empty() ? "--cell is required"
                                      : "no tracked cell '" + Opts.Cell +
                                            "' in problem '" + Spec.Name +
                                            "'")
                << "; candidates:\n";
      for (const auto &T : Prov.Tracked)
        std::cerr << "  " << T.RefText << "  (" << (T.IsDef ? "def" : "use")
                  << " at " << T.Loc.toString() << ")\n";
      return 2;
    }

    unsigned Node = Opts.Node >= 0 ? static_cast<unsigned>(Opts.Node)
                                   : Prov.ExitNode;
    if (Node >= Prov.NumNodes) {
      std::cerr << "ardf-explain: error: --node " << Node
                << " out of range; the flow graph has " << Prov.NumNodes
                << " node(s)\n";
      return 2;
    }

    DerivationGraph G = buildDerivation(Prov, Node,
                                        static_cast<unsigned>(Idx),
                                        !Opts.OutSide);
    printDerivation(std::cout, Prov, G);
    if (Opts.Json)
      std::cout << derivationToJson(Prov, G) << "\n";
    return 0;
  } catch (const std::exception &E) {
    std::cerr << "ardf-explain: error: internal error: " << E.what()
              << "\n";
    return 1;
  } catch (...) {
    std::cerr << "ardf-explain: error: unknown internal error\n";
    return 1;
  }
}
