//===- tools/ardf-serve/ardf_serve.cpp - Analysis daemon CLI --------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running analysis daemon: newline-delimited JSON requests
/// (analyze, lint, explain, stats, shutdown -- serve/Protocol.h) over
/// stdio or a Unix socket, answered from a warm per-tenant cache so a
/// stream of edits to the same file re-solves only the touched loops.
///
///   ardf-serve                            # stdio, one request per line
///   ardf-serve --socket=/tmp/ardf.sock    # daemon on a Unix socket
///   ardf-serve --connect=/tmp/ardf.sock   # client: pipe stdin lines in
///
///   echo '{"method":"lint","source":"do i = 1, 10 { A[i] = A[i-1]; }"}' |
///       ardf-serve
///
/// Exit codes: 0 orderly shutdown (EOF or a shutdown request), 2 usage
/// or socket failure.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/BuildInfo.h"
#include "support/Socket.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace ardf;
using namespace ardf::serve;

namespace {

struct CliOptions {
  /// --socket=PATH: serve connections on a Unix socket instead of stdio.
  std::string SocketPath;
  /// --connect=PATH: client mode -- forward stdin lines to a running
  /// daemon and print its response lines.
  std::string ConnectPath;
  ServeOptions Serve;
};

int usage(std::ostream &OS, int Code) {
  OS << "usage: ardf-serve [options]\n"
        "\n"
        "Long-running analysis daemon speaking newline-delimited JSON:\n"
        "one request object per line, one response line per request\n"
        "(methods: analyze, lint, explain, stats, shutdown). Parsed\n"
        "programs, warm analysis sessions, and rendered results are\n"
        "cached per tenant, and edited sources are re-analyzed\n"
        "incrementally (only structurally changed loops re-solve).\n"
        "\n"
        "options:\n"
        "  --socket=PATH           serve on a Unix socket (default:\n"
        "                          stdio, exiting at EOF)\n"
        "  --connect=PATH          client mode: send stdin lines to a\n"
        "                          running daemon, print responses\n"
        "  --workers=N             worker threads (default 1)\n"
        "  --queue-depth=N         bounded request queue; excess requests\n"
        "                          get an overloaded response (default 64)\n"
        "  --max-request-bytes=N   admission cap per request line\n"
        "                          (default 1MiB, 0 = uncapped)\n"
        "  --deadline-ms=N         per-request wall-clock deadline and\n"
        "                          default solver deadline (default 2000,\n"
        "                          0 disables deadline and watchdog)\n"
        "  --grace-ms=N            extra time past the deadline before\n"
        "                          the watchdog fails a wedged worker's\n"
        "                          request (default 500)\n"
        "  --tenant-quota=N        cached documents per tenant, LRU\n"
        "                          evicted (default 8)\n"
        "  --engine=NAME           default solver engine (default:\n"
        "                          reference). NAME is one of:\n"
        "                          "
     << engineNameList()
     << "\n"
        "  --budget-visits=N       server-wide node-visit ceiling\n"
        "  --budget-slack=F        ceiling at F x the 3N/2N bound\n"
        "  --budget-cells=N        server-wide matrix-cell ceiling\n"
        "  --version               print version and build type\n"
        "  --help                  show this message\n"
        "\n"
        "Requests may tighten the server budgets, never loosen them.\n"
        "exit codes: 0 orderly shutdown, 2 usage/socket failure\n";
  return Code;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts, std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Err = "help";
      return false;
    } else if (Arg == "--version") {
      Err = "version";
      return false;
    } else if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(strlen("--socket="));
      if (Opts.SocketPath.empty()) {
        Err = "--socket= needs a path";
        return false;
      }
    } else if (Arg.rfind("--connect=", 0) == 0) {
      Opts.ConnectPath = Arg.substr(strlen("--connect="));
      if (Opts.ConnectPath.empty()) {
        Err = "--connect= needs a path";
        return false;
      }
    } else if (Arg.rfind("--workers=", 0) == 0) {
      int N = std::atoi(Arg.c_str() + strlen("--workers="));
      if (N < 1) {
        Err = "--workers needs a positive integer";
        return false;
      }
      Opts.Serve.Workers = static_cast<unsigned>(N);
    } else if (Arg.rfind("--queue-depth=", 0) == 0) {
      int N = std::atoi(Arg.c_str() + strlen("--queue-depth="));
      if (N < 1) {
        Err = "--queue-depth needs a positive integer";
        return false;
      }
      Opts.Serve.QueueDepth = static_cast<unsigned>(N);
    } else if (Arg.rfind("--max-request-bytes=", 0) == 0) {
      Opts.Serve.MaxRequestBytes = std::strtoull(
          Arg.c_str() + strlen("--max-request-bytes="), nullptr, 10);
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      Opts.Serve.RequestDeadlineMs =
          std::strtoull(Arg.c_str() + strlen("--deadline-ms="), nullptr, 10);
    } else if (Arg.rfind("--grace-ms=", 0) == 0) {
      Opts.Serve.WatchdogGraceMs =
          std::strtoull(Arg.c_str() + strlen("--grace-ms="), nullptr, 10);
    } else if (Arg.rfind("--tenant-quota=", 0) == 0) {
      int N = std::atoi(Arg.c_str() + strlen("--tenant-quota="));
      if (N < 1) {
        Err = "--tenant-quota needs a positive integer";
        return false;
      }
      Opts.Serve.TenantQuota = static_cast<unsigned>(N);
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string Name = Arg.substr(strlen("--engine="));
      if (!parseEngineName(Name, Opts.Serve.Engine)) {
        Err = "unknown engine '" + Name + "' (expected one of: " +
              engineNameList() + ")";
        return false;
      }
    } else if (Arg.rfind("--budget-visits=", 0) == 0) {
      Opts.Serve.Budget.MaxNodeVisits =
          std::strtoull(Arg.c_str() + strlen("--budget-visits="), nullptr, 10);
    } else if (Arg.rfind("--budget-slack=", 0) == 0) {
      Opts.Serve.Budget.VisitSlack =
          std::strtod(Arg.c_str() + strlen("--budget-slack="), nullptr);
    } else if (Arg.rfind("--budget-cells=", 0) == 0) {
      Opts.Serve.Budget.MaxMatrixCells =
          std::strtoull(Arg.c_str() + strlen("--budget-cells="), nullptr, 10);
    } else {
      Err = "unknown option '" + Arg + "'";
      return false;
    }
  }
  if (!Opts.SocketPath.empty() && !Opts.ConnectPath.empty()) {
    Err = "--socket and --connect are mutually exclusive";
    return false;
  }
  return true;
}

/// One client connection's write side, shared with in-flight responses.
/// Closed is flipped (and the fd closed) under the mutex, so a late
/// response after disconnect is skipped instead of writing into a
/// recycled descriptor.
struct ConnectionSink {
  explicit ConnectionSink(int Fd) : Fd(Fd) {}
  std::mutex M;
  int Fd;
  bool Closed = false;

  void writeResponse(const std::string &Line) {
    std::lock_guard<std::mutex> L(M);
    if (Closed)
      return;
    // A failed write (peer vanished mid-response) is not fatal to the
    // daemon; the reader side will see the disconnect and clean up.
    net::writeLine(Fd, Line);
  }

  void close() {
    std::lock_guard<std::mutex> L(M);
    if (Closed)
      return;
    Closed = true;
    net::closeFd(Fd);
  }
};

/// Reads one connection (or stdio) until EOF/shutdown, submitting every
/// line. Returns when the stream ends.
void serveStream(AnalysisServer &Server, net::LineReader &Reader,
                 const std::shared_ptr<ConnectionSink> &Sink) {
  uint64_t Cap = Server.options().MaxRequestBytes;
  std::string Line;
  for (;;) {
    net::LineStatus S = Reader.readLine(Line, Cap);
    if (S == net::LineStatus::Eof || S == net::LineStatus::Error)
      return;
    if (S == net::LineStatus::TooLong) {
      // The reader drained the oversized line without buffering it;
      // refuse it here -- submit() never sees the payload.
      Sink->writeResponse(errorResponse(
          json::Value(), ErrorCode::PayloadTooLarge,
          "request line exceeds the " + std::to_string(Cap) + " byte cap"));
      continue;
    }
    Server.submit(Line, [Sink](std::string Response) {
      Sink->writeResponse(Response);
    });
    if (Server.shutdownRequested())
      return;
  }
}

int runStdio(const CliOptions &Opts) {
  net::ignoreSigpipe();
  AnalysisServer Server(Opts.Serve);
  auto Sink = std::make_shared<ConnectionSink>(1 /* stdout */);
  net::LineReader Reader(0 /* stdin */);
  serveStream(Server, Reader, Sink);
  // Answer everything in flight before exiting; responses drained here
  // keep the one-response-per-line contract even at abrupt EOF.
  Server.drain();
  return 0;
}

int runSocket(const CliOptions &Opts) {
  net::ignoreSigpipe();
  net::UnixListener Listener;
  std::string Error;
  if (!Listener.listen(Opts.SocketPath, Error)) {
    std::cerr << "ardf-serve: error: " << Error << "\n";
    return 2;
  }
  std::cerr << "ardf-serve: listening on " << Opts.SocketPath << "\n";

  AnalysisServer Server(Opts.Serve);

  // A shutdown request arrives on some connection; this watcher turns
  // it into a closed listener so the accept loop unblocks.
  std::atomic<bool> Stop{false};
  std::thread ShutdownWatcher([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      if (Server.shutdownRequested()) {
        Listener.close();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  std::vector<std::thread> Connections;
  for (;;) {
    int Fd = Listener.accept();
    if (Fd < 0)
      break; // closed by the shutdown watcher (or a fatal accept error)
    Connections.emplace_back([&Server, Fd] {
      auto Sink = std::make_shared<ConnectionSink>(Fd);
      net::LineReader Reader(Fd);
      serveStream(Server, Reader, Sink);
      Sink->close();
    });
  }
  Stop.store(true, std::memory_order_relaxed);
  ShutdownWatcher.join();
  for (std::thread &T : Connections)
    T.join();
  Server.drain();
  return 0;
}

int runClient(const CliOptions &Opts) {
  net::ignoreSigpipe();
  std::string Error;
  int Fd = net::connectUnix(Opts.ConnectPath, Error);
  if (Fd < 0) {
    std::cerr << "ardf-serve: error: " << Error << "\n";
    return 2;
  }
  net::LineReader In(0 /* stdin */), Peer(Fd);
  std::string Line, Response;
  int Code = 0;
  for (;;) {
    net::LineStatus S = In.readLine(Line);
    if (S != net::LineStatus::Ok)
      break;
    if (!net::writeLine(Fd, Line, &Error)) {
      std::cerr << "ardf-serve: error: send failed: " << Error << "\n";
      Code = 2;
      break;
    }
    net::LineStatus R = Peer.readLine(Response);
    if (R != net::LineStatus::Ok) {
      std::cerr << "ardf-serve: error: daemon closed the connection\n";
      Code = 2;
      break;
    }
    std::cout << Response << "\n" << std::flush;
  }
  net::closeFd(Fd);
  return Code;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  std::string Err;
  if (!parseArgs(Argc, Argv, Opts, Err)) {
    if (Err == "help")
      return usage(std::cout, 0);
    if (Err == "version") {
      std::cout << toolVersionLine("ardf-serve") << "\n";
      return 0;
    }
    std::cerr << "ardf-serve: error: " << Err << "\n\n";
    return usage(std::cerr, 2);
  }
  if (!Opts.ConnectPath.empty())
    return runClient(Opts);
  if (!Opts.SocketPath.empty())
    return runSocket(Opts);
  return runStdio(Opts);
}
