//===- tools/ardf-stats/ardf_stats.cpp - Telemetry stats CLI --------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the batched program driver (the four paper problems over every
/// loop) on each .arf input under a telemetry context and reports the
/// recorded counters: solver work (node visits against the paper's 3N
/// must / 2N may bounds, meets, flow applications), lowering volume,
/// session cache hit rates, and wall/CPU time -- as a human table, stats
/// JSON, or a Perfetto-loadable Chrome trace.
///
///   ardf-stats examples/programs/*.arf
///   ardf-stats --json=stats.json --trace-out=trace.json fig1.arf
///   ardf-stats --engine=packed --threads=4 big.arf
///
/// Exit codes: 0 success, 2 usage or I/O failure. Parse failures of an
/// input are reported and exit 2; diagnostics are ardf-lint's job.
///
//===----------------------------------------------------------------------===//

#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "support/BuildInfo.h"
#include "support/FileIO.h"
#include "telemetry/Export.h"
#include "telemetry/Telemetry.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace ardf;

namespace {

struct CliOptions {
  /// --json / --json=FILE: stats JSON instead of the human table (to
  /// stdout, or to FILE).
  bool Json = false;
  std::string JsonOut;
  /// --format=prometheus / --prometheus=FILE: Prometheus text
  /// exposition of every counter, derived gauge, and latency histogram.
  bool Prometheus = false;
  std::string PrometheusOut;
  /// --trace-out=FILE: Chrome trace-event JSON of the run's spans.
  std::string TraceOut;
  /// --max-input-bytes=N: per-file input size cap (0 = uncapped).
  uint64_t MaxInputBytes = io::DefaultMaxInputBytes;
  DriverOptions Driver;
  std::vector<std::string> Files;
};

int usage(std::ostream &OS, int Code) {
  OS << "usage: ardf-stats [options] <file.arf>...\n"
        "\n"
        "Analyzes every loop of each input with the four paper problems\n"
        "(must-reaching definitions, delta-available values, delta-busy\n"
        "stores, delta-reaching references) and reports the telemetry\n"
        "counters of the run: node visits vs. the paper's 3N/2N bounds,\n"
        "meet/apply operation counts, lowering volume, and session cache\n"
        "hit rates.\n"
        "\n"
        "options:\n"
        "  --json[=FILE]              stats JSON (stdout, or to FILE)\n"
        "  --format=prometheus        Prometheus text exposition of all\n"
        "                             counters, cache hit-rate gauges,\n"
        "                             and latency histograms (stdout)\n"
        "  --prometheus=FILE          same, written to FILE\n"
        "  --trace-out=FILE           write Chrome trace-event JSON\n"
        "                             (load in Perfetto / about:tracing)\n"
        "  --engine=NAME              solver engine (default: reference;\n"
        "                             simd = packed kernel with runtime-\n"
        "                             dispatched SIMD rows + interleaved\n"
        "                             multi-problem solves, summary =\n"
        "                             memoized transfer summaries).\n"
        "                             NAME is one of:\n"
        "                             "
     << engineNameList()
     << "\n"
        "  --threads=N                driver worker threads (default: 1)\n"
        "  --no-nested                analyze outermost loops only\n"
        "  --fixpoint                 iterate to fixpoint instead of the\n"
        "                             paper's fixed two-pass schedule\n"
        "  --budget-visits=N          cap solver node visits per solve\n"
        "  --budget-slack=F           cap visits at F x the 3N/2N bound\n"
        "  --budget-deadline-ms=N     per-solve wall-clock deadline\n"
        "  --budget-cells=N           cap matrix cells per solve\n"
        "  --max-input-bytes=N        per-file input cap (default 64MiB,\n"
        "                             0 = uncapped)\n"
        "  --version                  print version and build type\n"
        "  --help                     show this message\n"
        "\n"
        "exit codes: 0 success, 2 usage/IO failure\n";
  return Code;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts, std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Err = "help";
      return false;
    } else if (Arg == "--version") {
      Err = "version";
      return false;
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg.rfind("--json=", 0) == 0) {
      Opts.Json = true;
      Opts.JsonOut = Arg.substr(strlen("--json="));
      if (Opts.JsonOut.empty()) {
        Err = "--json= needs a file name";
        return false;
      }
    } else if (Arg == "--format=prometheus") {
      Opts.Prometheus = true;
    } else if (Arg.rfind("--prometheus=", 0) == 0) {
      Opts.Prometheus = true;
      Opts.PrometheusOut = Arg.substr(strlen("--prometheus="));
      if (Opts.PrometheusOut.empty()) {
        Err = "--prometheus= needs a file name";
        return false;
      }
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      Opts.TraceOut = Arg.substr(strlen("--trace-out="));
      if (Opts.TraceOut.empty()) {
        Err = "--trace-out needs a file name";
        return false;
      }
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string Name = Arg.substr(strlen("--engine="));
      if (!parseEngineName(Name, Opts.Driver.Solver.Eng)) {
        Err = "unknown engine '" + Name + "' (expected one of: " +
              engineNameList() + ")";
        return false;
      }
    } else if (Arg.rfind("--threads=", 0) == 0) {
      int N = std::atoi(Arg.c_str() + strlen("--threads="));
      if (N < 1) {
        Err = "--threads needs a positive integer";
        return false;
      }
      Opts.Driver.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--no-nested") {
      Opts.Driver.IncludeNested = false;
    } else if (Arg == "--fixpoint") {
      Opts.Driver.Solver.Strat = SolverOptions::Strategy::IterateToFixpoint;
    } else if (Arg.rfind("--budget-visits=", 0) == 0) {
      Opts.Driver.Solver.Budget.MaxNodeVisits =
          std::strtoull(Arg.c_str() + strlen("--budget-visits="), nullptr, 10);
      if (Opts.Driver.Solver.Budget.MaxNodeVisits == 0) {
        Err = "--budget-visits needs a positive integer";
        return false;
      }
    } else if (Arg.rfind("--budget-slack=", 0) == 0) {
      Opts.Driver.Solver.Budget.VisitSlack =
          std::strtod(Arg.c_str() + strlen("--budget-slack="), nullptr);
      if (Opts.Driver.Solver.Budget.VisitSlack <= 0.0) {
        Err = "--budget-slack needs a positive factor";
        return false;
      }
    } else if (Arg.rfind("--budget-deadline-ms=", 0) == 0) {
      uint64_t Ms = std::strtoull(
          Arg.c_str() + strlen("--budget-deadline-ms="), nullptr, 10);
      if (Ms == 0) {
        Err = "--budget-deadline-ms needs a positive integer";
        return false;
      }
      Opts.Driver.Solver.Budget.DeadlineNs = Ms * 1000000ull;
    } else if (Arg.rfind("--budget-cells=", 0) == 0) {
      Opts.Driver.Solver.Budget.MaxMatrixCells = std::strtoull(
          Arg.c_str() + strlen("--budget-cells="), nullptr, 10);
      if (Opts.Driver.Solver.Budget.MaxMatrixCells == 0) {
        Err = "--budget-cells needs a positive integer";
        return false;
      }
    } else if (Arg.rfind("--max-input-bytes=", 0) == 0) {
      Opts.MaxInputBytes = std::strtoull(
          Arg.c_str() + strlen("--max-input-bytes="), nullptr, 10);
    } else if (!Arg.empty() && Arg[0] == '-') {
      Err = "unknown option '" + Arg + "'";
      return false;
    } else {
      Opts.Files.push_back(std::move(Arg));
    }
  }
  if (Opts.Files.empty()) {
    Err = "no input files";
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  std::string Err;
  if (!parseArgs(Argc, Argv, Opts, Err)) {
    if (Err == "help")
      return usage(std::cout, 0);
    if (Err == "version") {
      std::cout << toolVersionLine("ardf-stats") << "\n";
      return 0;
    }
    std::cerr << "ardf-stats: error: " << Err << "\n\n";
    return usage(std::cerr, 2);
  }

  telem::Telemetry Telem;
  // A stats run exists to measure, so the latency histograms (which
  // cost clock reads the library otherwise skips) are always on here.
  Telem.enableTimings();
  telem::MemoryTraceSink Sink;
  if (!Opts.TraceOut.empty())
    Telem.setSink(&Sink);

  uint64_t WallStart = telem::wallNowNs();
  uint64_t CpuStart = telem::cpuNowNs();
  unsigned TotalLoops = 0, TotalVisits = 0;
  DriverReport Totals;
  {
    telem::TelemetryScope Scope(Telem);
    for (const std::string &File : Opts.Files) {
      std::string Text;
      std::string ReadDetail;
      io::ReadStatus RS =
          io::readInputFile(File, Text, Opts.MaxInputBytes, &ReadDetail);
      if (RS != io::ReadStatus::Ok) {
        std::cerr << "ardf-stats: error: "
                  << io::describeReadError(RS, File, Opts.MaxInputBytes,
                                           ReadDetail)
                  << "\n";
        return 2;
      }
      ParseResult Parsed = parseProgram(Text);
      if (!Parsed.succeeded()) {
        for (const ParseDiagnostic &PD : Parsed.Diags)
          std::cerr << File << ":" << PD.Line << ":" << PD.Col
                    << ": error: " << PD.Message << "\n";
        return 2;
      }
      telem::Span FileSpan("analyze-file", "driver", File.c_str());
      ProgramAnalysisDriver Driver(Parsed.Prog, Opts.Driver);
      Driver.run();
      TotalLoops += static_cast<unsigned>(Driver.loops().size());
      TotalVisits += Driver.totalNodeVisits();
      DriverReport R = Driver.report();
      Totals.Ok += R.Ok;
      Totals.Degraded += R.Degraded;
      Totals.Failed += R.Failed;
      Totals.Unsupported += R.Unsupported;
      for (const AnalyzedLoop &L : Driver.loops())
        if (!L.Loop)
          std::cerr << "ardf-stats: warning: " << File
                    << ": loop at nest path '" << L.NestPath
                    << "' unsupported: " << L.UnsupportedReason << "\n";
      for (const AnalyzedLoop &L : Driver.loops())
        for (const LoopFailure &F : L.Failures)
          std::cerr << "ardf-stats: warning: " << File << ": loop over '"
                    << L.Loop->getIndVar() << "': " << F.Phase
                    << " failed: " << F.Message << "\n";
    }
  }
  uint64_t WallNs = telem::wallNowNs() - WallStart;
  uint64_t CpuNs = telem::cpuNowNs() - CpuStart;

  if (!Opts.TraceOut.empty()) {
    std::ofstream Out(Opts.TraceOut, std::ios::binary);
    if (!Out) {
      std::cerr << "ardf-stats: error: cannot write '" << Opts.TraceOut
                << "'\n";
      return 2;
    }
    telem::writeChromeTrace(Out, Sink.events());
  }

  if (Opts.Prometheus) {
    if (Opts.PrometheusOut.empty()) {
      telem::writePrometheus(std::cout, Telem);
    } else {
      std::ofstream Out(Opts.PrometheusOut, std::ios::binary);
      if (!Out) {
        std::cerr << "ardf-stats: error: cannot write '"
                  << Opts.PrometheusOut << "'\n";
        return 2;
      }
      telem::writePrometheus(Out, Telem);
    }
    return 0;
  }

  if (Opts.Json) {
    if (Opts.JsonOut.empty()) {
      telem::writeStatsJson(std::cout, Telem);
    } else {
      std::ofstream Out(Opts.JsonOut, std::ios::binary);
      if (!Out) {
        std::cerr << "ardf-stats: error: cannot write '" << Opts.JsonOut
                  << "'\n";
        return 2;
      }
      telem::writeStatsJson(Out, Telem);
    }
    return 0;
  }

  std::cout << "ardf-stats: " << Opts.Files.size() << " file(s), "
            << TotalLoops << " loop(s), " << TotalVisits
            << " node visit(s)\n";
  std::cout << "loops: " << Totals.Ok << " ok, " << Totals.Degraded
            << " degraded, " << Totals.Failed << " failed";
  if (Totals.Unsupported != 0)
    std::cout << ", " << Totals.Unsupported << " unsupported";
  std::cout << "\n";
  std::cout << "wall: " << (WallNs / 1000000.0) << " ms, cpu: "
            << (CpuNs / 1000000.0) << " ms\n\n";
  telem::writeStatsTable(std::cout, Telem);
  return 0;
}
