//===- tools/ardf-lint/ardf_lint.cpp - Array reference linter CLI ---------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the lint engine: parses each .arf input,
/// runs the Validate pass plus all framework-backed checks, and prints
/// the combined diagnostics as human text, JSON lines, or SARIF 2.1.0.
///
///   ardf-lint examples/programs/fig1.arf
///   ardf-lint --format=sarif --engine=packed examples/programs/*.arf
///   ardf-lint --trace-out=trace.json --stats examples/programs/fig1.arf
///
/// Exit codes: 0 clean (warnings and notes only), 1 at least one
/// error-severity diagnostic, 2 usage or I/O failure.
///
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include "lint/Render.h"
#include "support/BuildInfo.h"
#include "support/FileIO.h"
#include "telemetry/Export.h"
#include "telemetry/Telemetry.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace ardf;

namespace {

enum class Format { Text, JsonLines, Sarif };

struct CliOptions {
  Format Fmt = Format::Text;
  LintOptions Lint;
  bool Quiet = false;
  /// --strict: any degraded check (budget breach or injected fault)
  /// fails the run, so CI can assert "no check silently weakened".
  bool Strict = false;
  /// --max-input-bytes=N: per-file input size cap (0 = uncapped).
  uint64_t MaxInputBytes = io::DefaultMaxInputBytes;
  /// --trace-out=FILE: Chrome trace-event JSON of the run's spans.
  std::string TraceOut;
  /// --stats / --stats=FILE: counter report (human table on stdout, or
  /// stats JSON when a file is given).
  bool Stats = false;
  std::string StatsOut;
  /// --list-checks: print the check table and exit 0 (no inputs needed).
  bool ListChecks = false;
  std::vector<std::string> Files;
};

int usage(std::ostream &OS, int Code) {
  OS << "usage: ardf-lint [options] <file.arf>...\n"
        "\n"
        "Array reference diagnostics over .arf loop programs, backed by\n"
        "the (G,K) data flow framework of Duesterwald, Gupta & Soffa\n"
        "(PLDI 1993). Checks: redundant-load, dead-store,\n"
        "loop-carried-reuse, cross-iteration-conflict, plus analysis\n"
        "precondition validation.\n"
        "\n"
        "options:\n"
        "  --format=text|json|sarif   output format (default: text)\n"
        "  --engine=NAME              primary solver engine (default:\n"
        "                             reference; simd = packed kernel\n"
        "                             with runtime-dispatched SIMD rows,\n"
        "                             summary = memoized transfer\n"
        "                             summaries). NAME is one of:\n"
        "                             "
     << engineNameList()
     << "\n"
        "  --no-cross-check           skip solving with both engines\n"
        "  --no-nested                lint outermost loops only\n"
        "  --explain[=CHECK-ID]       attach the derivation of each\n"
        "                             finding's backing solution cell: a\n"
        "                             because-trail in text output, the\n"
        "                             derivation DAG in JSON, SARIF\n"
        "                             codeFlows. With =CHECK-ID only that\n"
        "                             check's findings are explained\n"
        "  --strict                   fail (exit 1) when any check was\n"
        "                             degraded by a budget or fault\n"
        "  --budget-visits=N          cap solver node visits per solve\n"
        "  --budget-slack=F           cap visits at F x the 3N/2N bound\n"
        "  --budget-deadline-ms=N     per-solve wall-clock deadline\n"
        "  --budget-cells=N           cap matrix cells per solve\n"
        "  --max-input-bytes=N        per-file input cap (default 64MiB,\n"
        "                             0 = uncapped)\n"
        "  --trace-out=FILE           write Chrome trace-event JSON\n"
        "                             (load in Perfetto / about:tracing)\n"
        "  --stats[=FILE]             print telemetry counters (table on\n"
        "                             stdout, stats JSON with =FILE)\n"
        "  --list-checks              list every check id with its\n"
        "                             severity and description, then\n"
        "                             exit 0\n"
        "  --quiet                    suppress the trailing summary line\n"
        "  --version                  print version and build type\n"
        "  --help                     show this message\n"
        "\n"
        "exit codes: 0 clean, 1 error diagnostics, 2 usage/IO failure\n";
  return Code;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts, std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Err = "help";
      return false;
    } else if (Arg == "--version") {
      Err = "version";
      return false;
    } else if (Arg == "--format=text") {
      Opts.Fmt = Format::Text;
    } else if (Arg == "--format=json") {
      Opts.Fmt = Format::JsonLines;
    } else if (Arg == "--format=sarif") {
      Opts.Fmt = Format::Sarif;
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string Name = Arg.substr(strlen("--engine="));
      if (!parseEngineName(Name, Opts.Lint.Engine)) {
        Err = "unknown engine '" + Name + "' (expected one of: " +
              engineNameList() + ")";
        return false;
      }
    } else if (Arg == "--no-cross-check") {
      Opts.Lint.CrossCheck = false;
    } else if (Arg == "--no-nested") {
      Opts.Lint.IncludeNested = false;
    } else if (Arg == "--strict") {
      Opts.Strict = true;
    } else if (Arg == "--explain") {
      Opts.Lint.Explain = true;
    } else if (Arg.rfind("--explain=", 0) == 0) {
      Opts.Lint.Explain = true;
      Opts.Lint.ExplainCheck = Arg.substr(strlen("--explain="));
      if (Opts.Lint.ExplainCheck.empty()) {
        Err = "--explain= needs a check id";
        return false;
      }
    } else if (Arg.rfind("--budget-visits=", 0) == 0) {
      Opts.Lint.Budget.MaxNodeVisits =
          std::strtoull(Arg.c_str() + strlen("--budget-visits="), nullptr, 10);
      if (Opts.Lint.Budget.MaxNodeVisits == 0) {
        Err = "--budget-visits needs a positive integer";
        return false;
      }
    } else if (Arg.rfind("--budget-slack=", 0) == 0) {
      Opts.Lint.Budget.VisitSlack =
          std::strtod(Arg.c_str() + strlen("--budget-slack="), nullptr);
      if (Opts.Lint.Budget.VisitSlack <= 0.0) {
        Err = "--budget-slack needs a positive factor";
        return false;
      }
    } else if (Arg.rfind("--budget-deadline-ms=", 0) == 0) {
      uint64_t Ms = std::strtoull(
          Arg.c_str() + strlen("--budget-deadline-ms="), nullptr, 10);
      if (Ms == 0) {
        Err = "--budget-deadline-ms needs a positive integer";
        return false;
      }
      Opts.Lint.Budget.DeadlineNs = Ms * 1000000ull;
    } else if (Arg.rfind("--budget-cells=", 0) == 0) {
      Opts.Lint.Budget.MaxMatrixCells =
          std::strtoull(Arg.c_str() + strlen("--budget-cells="), nullptr, 10);
      if (Opts.Lint.Budget.MaxMatrixCells == 0) {
        Err = "--budget-cells needs a positive integer";
        return false;
      }
    } else if (Arg.rfind("--max-input-bytes=", 0) == 0) {
      Opts.MaxInputBytes = std::strtoull(
          Arg.c_str() + strlen("--max-input-bytes="), nullptr, 10);
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      Opts.TraceOut = Arg.substr(strlen("--trace-out="));
      if (Opts.TraceOut.empty()) {
        Err = "--trace-out needs a file name";
        return false;
      }
    } else if (Arg == "--list-checks") {
      Opts.ListChecks = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg.rfind("--stats=", 0) == 0) {
      Opts.Stats = true;
      Opts.StatsOut = Arg.substr(strlen("--stats="));
      if (Opts.StatsOut.empty()) {
        Err = "--stats= needs a file name";
        return false;
      }
    } else if (!Arg.empty() && Arg[0] == '-') {
      Err = "unknown option '" + Arg + "'";
      return false;
    } else {
      Opts.Files.push_back(std::move(Arg));
    }
  }
  if (Opts.Files.empty() && !Opts.ListChecks) {
    Err = "no input files";
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  std::string Err;
  if (!parseArgs(Argc, Argv, Opts, Err)) {
    if (Err == "help")
      return usage(std::cout, 0);
    if (Err == "version") {
      std::cout << toolVersionLine("ardf-lint") << "\n";
      return 0;
    }
    std::cerr << "ardf-lint: error: " << Err << "\n\n";
    return usage(std::cerr, 2);
  }

  if (Opts.ListChecks) {
    for (const CheckInfo &C : allChecks())
      std::cout << C.Id << "  [" << C.Severity << "]  " << C.Description
                << "\n";
    return 0;
  }

  // Telemetry is installed only when requested, so a plain lint run
  // keeps the instrumentation at its zero-overhead-off setting.
  bool WantTelemetry = Opts.Stats || !Opts.TraceOut.empty();
  telem::Telemetry Telem;
  // Latency histograms need clock reads, so timings are tied to the
  // same opt-in; a plain run still pays zero instrumentation cost.
  if (WantTelemetry)
    Telem.enableTimings();
  telem::MemoryTraceSink Sink;
  if (!Opts.TraceOut.empty())
    Telem.setSink(&Sink);
  std::optional<telem::TelemetryScope> Scope;
  if (WantTelemetry)
    Scope.emplace(Telem);

  SourceMap Sources;
  std::vector<Diagnostic> AllDiags;
  unsigned Loops = 0, Divergences = 0, Degraded = 0;
  bool HadErrors = false;
  for (const std::string &File : Opts.Files) {
    std::string Text;
    std::string ReadDetail;
    io::ReadStatus RS =
        io::readInputFile(File, Text, Opts.MaxInputBytes, &ReadDetail);
    if (RS != io::ReadStatus::Ok) {
      std::cerr << "ardf-lint: error: "
                << io::describeReadError(RS, File, Opts.MaxInputBytes,
                                         ReadDetail)
                << "\n";
      return 2;
    }
    Sources.add(File, Text);
    telem::Span FileSpan("lint-file", "lint", File.c_str());
    // Last-resort per-file fault boundary: the engine isolates faults
    // per check, but if anything still escapes, the remaining files are
    // linted and this one is reported as an error.
    try {
      LintResult R = lintSource(Text, File, Opts.Lint);
      HadErrors |= R.hasErrors();
      Loops += R.LoopsAnalyzed;
      Divergences += R.EngineDivergences;
      Degraded += R.ChecksDegraded;
      AllDiags.insert(AllDiags.end(),
                      std::make_move_iterator(R.Diags.begin()),
                      std::make_move_iterator(R.Diags.end()));
    } catch (const std::exception &E) {
      std::cerr << "ardf-lint: error: internal error while linting '" << File
                << "': " << E.what() << "\n";
      HadErrors = true;
    }
  }

  switch (Opts.Fmt) {
  case Format::Text:
    renderText(std::cout, AllDiags, Sources);
    if (!Opts.Quiet) {
      unsigned Errors = 0, Warnings = 0, Notes = 0;
      for (const Diagnostic &D : AllDiags) {
        Errors += D.Severity == DiagSeverity::Error;
        Warnings += D.Severity == DiagSeverity::Warning;
        Notes += D.Severity == DiagSeverity::Note;
      }
      std::cout << "ardf-lint: " << Opts.Files.size() << " file(s), " << Loops
                << " loop(s) analyzed: " << Errors << " error(s), "
                << Warnings << " warning(s), " << Notes << " note(s)";
      if (Opts.Lint.CrossCheck)
        std::cout << "; engine cross-check: " << Divergences
                  << " divergence(s)";
      if (Degraded != 0)
        std::cout << "; " << Degraded << " degraded check(s)";
      std::cout << '\n';
    }
    break;
  case Format::JsonLines:
    renderJsonLines(std::cout, AllDiags);
    break;
  case Format::Sarif:
    renderSarif(std::cout, AllDiags);
    break;
  }

  if (!Opts.TraceOut.empty()) {
    std::ofstream Out(Opts.TraceOut, std::ios::binary);
    if (!Out) {
      std::cerr << "ardf-lint: error: cannot write '" << Opts.TraceOut
                << "'\n";
      return 2;
    }
    telem::writeChromeTrace(Out, Sink.events());
  }
  if (Opts.Stats) {
    if (Opts.StatsOut.empty()) {
      telem::writeStatsTable(std::cout, Telem);
    } else {
      std::ofstream Out(Opts.StatsOut, std::ios::binary);
      if (!Out) {
        std::cerr << "ardf-lint: error: cannot write '" << Opts.StatsOut
                  << "'\n";
        return 2;
      }
      telem::writeStatsJson(Out, Telem);
    }
  }

  if (Opts.Strict && Degraded != 0) {
    std::cerr << "ardf-lint: error: --strict: " << Degraded
              << " check(s) ran degraded\n";
    return 1;
  }
  return HadErrors ? 1 : 0;
}
