//===- examples/quickstart.cpp - Fig. 1 / Table 1 in ten lines -----------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Parses the paper's running example (Fig. 1), runs must-reaching
// definitions, prints every pass of the fixed point computation in the
// format of Table 1, and lists the reuse conclusions of Section 3.5.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <iostream>

using namespace ardf;

int main() {
  const char *Source = R"(
    do i = 1, 1000 {
      C[i+2] = C[i] * 2;
      B[2*i] = C[i] + X;
      if (C[i] == 0) { C[i] = B[i-1]; }
      B[i] = C[i+1];
    }
  )";

  Program P = parseOrDie(Source);
  std::cout << "Input loop (Fig. 1):\n" << programToString(P) << '\n';

  SolverOptions Opts;
  Opts.RecordHistory = true;
  LoopDataFlow DF(P, *P.getFirstLoop(), ProblemSpec::mustReachingDefs(),
                  Opts);

  const LoopFlowGraph &Graph = DF.graph();
  const FrameworkInstance &FW = DF.framework();
  std::cout << "Loop flow graph (Fig. 3):\n";
  for (unsigned Id : Graph.reversePostorder())
    std::cout << "  " << Graph.nodeLabel(Id) << '\n';

  std::cout << "\nTracked definition tuple: " << FW.tupleHeader() << "\n\n";

  for (const PassSnapshot &Snap : DF.result().History) {
    std::cout << "--- " << Snap.Label << " ---\n";
    for (unsigned Id : Graph.reversePostorder()) {
      unsigned Num = Graph.getNode(Id).StmtNumber;
      if (!Num)
        continue;
      std::cout << "  IN[" << Num << "] = " << tupleToString(Snap.In[Id])
                << "   OUT[" << Num << "] = " << tupleToString(Snap.Out[Id])
                << '\n';
    }
  }

  std::cout << "\nSolver cost: " << DF.result().NodeVisits
            << " node visits (3 * " << Graph.getNumNodes()
            << " nodes, Section 3.2)\n";

  std::cout << "\nReuse conclusions (Section 3.5):\n";
  for (const ReusePair &Pair : DF.reusePairs(RefSelector::Uses)) {
    const ReferenceUniverse &U = DF.universe();
    std::cout << "  use " << exprToString(*U.occurrence(Pair.SinkId).Ref)
              << " reads the value defined by "
              << exprToString(*U.occurrence(Pair.SourceId).Ref) << ' '
              << Pair.Distance << " iteration(s) earlier\n";
  }
  return 0;
}
