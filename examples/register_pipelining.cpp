//===- examples/register_pipelining.cpp - Fig. 5 end to end --------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// The full Section 4.1 pipeline on the Fig. 5 loop A[i+2] = A[i] + X:
// live range analysis, IRIG construction, multi-coloring, code
// generation in three flavors (conventional, pipelined with moves,
// pipelined with a rotating register window), and simulation with
// memory-traffic accounting.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopDataFlow.h"
#include "codegen/LoopCodeGen.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"
#include "liverange/LiveRanges.h"
#include "machine/Simulator.h"
#include "regalloc/IRIG.h"

#include <iomanip>
#include <iostream>

using namespace ardf;

namespace {

MachineStats simulate(const Program &P, const CodeGenOptions &Opts,
                      const char *Title) {
  CodeGenResult CG = generateLoopCode(P, Opts);
  MachineSimulator Sim(CG.Prog);
  if (CG.ScalarRegs.count("X"))
    Sim.setReg(CG.ScalarRegs.at("X"), 7);
  for (int64_t K = 0; K != 16; ++K)
    Sim.setArrayCell("A", K, K * K);
  Sim.run();

  std::cout << "=== " << Title << " ===\n";
  CG.Prog.print(std::cout);
  const MachineStats &S = Sim.stats();
  std::cout << "  loads=" << S.Loads << " stores=" << S.Stores
            << " moves=" << S.Moves << " rotates=" << S.Rotates
            << " cycles=" << S.Cycles << "\n\n";
  return S;
}

} // namespace

int main() {
  Program P = parseOrDie("do i = 1, 1000 { A[i+2] = A[i] + X; }");
  std::cout << "Input loop (Fig. 5 (i)):\n" << programToString(P) << '\n';

  // --- Phase (i): live range analysis (Section 4.1.1), through a
  // session so any further problems on this loop reuse its tables. ---
  LoopAnalysisSession Session(P, *P.getFirstLoop());
  std::vector<LiveRange> Ranges = buildLiveRanges(Session);
  std::cout << "Live ranges:\n";
  for (const LiveRange &L : Ranges)
    std::cout << "  " << (L.isScalar() ? "scalar " : "array  ") << L.Name
              << "  depth=" << L.Depth << " accesses=" << L.AccessCount
              << " |l|=" << L.Length << " priority=" << std::fixed
              << std::setprecision(3) << L.Priority << '\n';

  // --- Phases (ii)+(iii): IRIG and multi-coloring (4.1.2, 4.1.3). ---
  IRIG G = buildIRIG(Ranges, Session.graph().getNumNodes());
  ColoringResult Colors = multiColor(G, 8);
  std::cout << "\nMulti-coloring with k=8 registers:\n";
  for (unsigned N = 0; N != G.size(); ++N) {
    std::cout << "  " << G.Ranges[N].Name << " -> ";
    if (!Colors.isAllocated(N)) {
      std::cout << "memory (spilled)\n";
      continue;
    }
    std::cout << 'r' << Colors.Regs[N].front();
    if (Colors.Regs[N].size() > 1)
      std::cout << "..r" << Colors.Regs[N].back();
    std::cout << '\n';
  }
  std::cout << '\n';

  // --- Phase (iv): code generation and simulation (4.1.4). ---
  CodeGenOptions Conv;
  MachineStats SConv = simulate(P, Conv, "conventional (Fig. 5 (ii))");

  CodeGenOptions Moves;
  Moves.Mode = PipelineMode::Moves;
  MachineStats SMoves =
      simulate(P, Moves, "register pipeline, explicit moves (Fig. 5 (iii))");

  CodeGenOptions Rot;
  Rot.Mode = PipelineMode::Rotate;
  MachineStats SRot =
      simulate(P, Rot, "register pipeline, rotating window (Cydra 5 ICP)");

  std::cout << "Summary over 1000 iterations:\n";
  std::cout << "  conventional: " << SConv.Loads << " loads, "
            << SConv.Cycles << " cycles\n";
  std::cout << "  moves:        " << SMoves.Loads << " loads, "
            << SMoves.Cycles << " cycles\n";
  std::cout << "  rotate:       " << SRot.Loads << " loads, " << SRot.Cycles
            << " cycles\n";
  return 0;
}
