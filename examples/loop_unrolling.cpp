//===- examples/loop_unrolling.cpp - Controlled unrolling (4.3) ----------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Demonstrates controlled loop unrolling: dependence detection from
// delta-reaching references, critical path prediction from distance-1
// information, and the incremental unroll decision, on three loops with
// very different parallelism profiles.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "transform/LoopUnroll.h"
#include "unroll/UnrollController.h"

#include <iostream>

using namespace ardf;

namespace {

void study(const char *Title, const char *Source) {
  Program P = parseOrDie(Source);
  const DoLoopStmt &Loop = *P.getFirstLoop();
  std::cout << "=== " << Title << " ===\n" << programToString(P);

  LoopDataFlow DF(P, Loop, ProblemSpec::reachingReferences());
  DependenceInfo Deps = extractDependences(DF);
  std::cout << "Dependences:\n";
  printDependences(std::cout, Deps, DF);

  UnrollPlan Plan = controlUnrolling(P, Loop);
  std::cout << "Base critical path l = " << Plan.BaseCriticalPath << '\n';
  for (const UnrollStep &S : Plan.Trace)
    std::cout << "  try factor " << S.Factor << ": predicted l_unroll="
              << S.PredictedCriticalPath << " exact=" << S.ExactCriticalPath
              << " parallelism=" << S.Parallelism << " -> "
              << (S.Performed ? "unroll" : "stop") << '\n';
  std::cout << "Chosen factor: " << Plan.ChosenFactor << '\n';

  if (Plan.ChosenFactor > 1) {
    Program Unrolled = unrollProgram(P, Plan.ChosenFactor);
    // Sanity: behavior preserved.
    Interpreter A(P), B(Unrolled);
    A.seedArray("A", 256, 3);
    B.seedArray("A", 256, 3);
    A.seedArray("B", 256, 4);
    B.seedArray("B", 256, 4);
    A.run();
    B.run();
    std::cout << "Unrolled loop "
              << (A.state().Arrays == B.state().Arrays ? "verified"
                                                       : "DIVERGED!")
              << " against the original.\n";
  }
  std::cout << '\n';
}

} // namespace

int main() {
  study("fully parallel loop",
        "do i = 1, 128 { A[i] = B[i] * 2; C[i] = B[i] + 1; }");
  study("tight recurrence (serial)",
        "do i = 1, 128 { A[i] = A[i-1] + 1; }");
  study("distance-2 recurrence (parallelism 2)",
        "do i = 1, 128 { A[i+2] = A[i] + 1; B[i] = A[i+2] * 2; }");
  return 0;
}
