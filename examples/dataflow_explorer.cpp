//===- examples/dataflow_explorer.cpp - CLI analysis driver --------------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// A command-line driver: reads a loop program from a file (or stdin),
// validates it, and dumps any of the four framework instances, the flow
// graph, dependences, and the transformation results.
//
//   dataflow_explorer [file] [--problem=reach|avail|busy|refs]
//                     [--dot] [--deps] [--optimize]
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "analysis/HierarchicalAnalysis.h"
#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"
#include "passes/LoopNormalize.h"
#include "passes/Validate.h"
#include "transform/LoadElimination.h"
#include "transform/StoreElimination.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace ardf;

namespace {

ProblemSpec specFor(const std::string &Name) {
  if (Name == "avail")
    return ProblemSpec::availableValues();
  if (Name == "busy")
    return ProblemSpec::busyStores();
  if (Name == "refs")
    return ProblemSpec::reachingReferences();
  return ProblemSpec::mustReachingDefs();
}

void dumpSolution(const Program &P, const DoLoopStmt &Loop,
                  ProblemSpec Spec) {
  SolverOptions Opts;
  Opts.RecordHistory = true;
  LoopDataFlow DF(P, Loop, Spec, Opts);
  const LoopFlowGraph &Graph = DF.graph();

  std::cout << "Problem: " << Spec.Name << "  tuple "
            << DF.framework().tupleHeader() << '\n';
  for (unsigned Id : Graph.reversePostorder()) {
    unsigned Num = Graph.getNode(Id).StmtNumber;
    std::cout << "  " << (Num ? std::to_string(Num) : std::string("-"))
              << ": IN " << tupleToString(DF.result().In[Id]) << "  OUT "
              << tupleToString(DF.result().Out[Id]) << "   ("
              << Graph.nodeLabel(Id) << ")\n";
  }
  std::cout << "  solved in " << DF.result().NodeVisits
            << " node visits\n\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string File;
  std::string Problem = "reach";
  bool Dot = false, Deps = false, Optimize = false;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--problem=", 0) == 0)
      Problem = Arg.substr(10);
    else if (Arg == "--dot")
      Dot = true;
    else if (Arg == "--deps")
      Deps = true;
    else if (Arg == "--optimize")
      Optimize = true;
    else
      File = Arg;
  }

  std::ostringstream Buffer;
  if (File.empty()) {
    Buffer << std::cin.rdbuf();
  } else {
    std::ifstream In(File);
    if (!In) {
      std::cerr << "error: cannot open " << File << '\n';
      return 1;
    }
    Buffer << In.rdbuf();
  }

  ParseResult Parsed = parseProgram(Buffer.str());
  if (!Parsed.succeeded()) {
    std::cerr << "parse errors:\n" << Parsed.diagnosticsToString();
    return 1;
  }

  NormalizeResult Normalized = normalizeLoops(Parsed.Prog);
  if (Normalized.LoopsNormalized)
    std::cout << "(normalized " << Normalized.LoopsNormalized
              << " loop(s) first)\n";
  const Program &P = Normalized.Transformed;

  for (const ValidationIssue &Issue : validateForAnalysis(P))
    std::cout << (Issue.Severity == IssueSeverity::Error ? "error: "
                                                         : "warning: ")
              << Issue.Message << '\n';

  // Hierarchical order: innermost loops first (Section 3.2). Loops come
  // from the nesting tree, so counted whiles are reduced to DO form and
  // rejected loops (early exits, uncounted whiles) are reported, not
  // silently skipped.
  HierarchicalAnalysis HA(P, specFor(Problem));
  HA.nest().forEach([](const NestLoop &N) {
    if (!N.isSupported())
      std::cout << "warning: loop at nest path '" << N.path()
                << "' not analyzed: " << N.UnsupportedReason << '\n';
  });
  for (const LoopResult &R : HA.loops()) {
    std::cout << "\n== loop over '" << R.Loop->getIndVar() << "' (depth "
              << R.Depth << ") ==\n";
    if (Dot)
      R.DF->graph().printDot(std::cout);
    dumpSolution(P, *R.Loop, specFor(Problem));
    if (Deps) {
      LoopDataFlow DF(P, *R.Loop, ProblemSpec::reachingReferences());
      printDependences(std::cout, extractDependences(DF), DF);
    }
  }

  if (Optimize) {
    StoreElimResult SR = eliminateRedundantStores(P);
    LoadElimResult LR = eliminateRedundantLoads(SR.Transformed);
    std::cout << "\n== optimized (" << SR.StoresEliminated
              << " stores, " << LR.LoadsEliminated
              << " loads eliminated) ==\n"
              << programToString(LR.Transformed);
  }
  return 0;
}
