//===- examples/multidim.cpp - Fig. 4: multi-dimensional references ------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Section 3.6 on the Fig. 4 loop nest: multi-dimensional references are
// linearized with symbolic dimension sizes; a separate analysis per
// enclosing loop discovers the recurrences of X (w.r.t. i) and Y
// (w.r.t. j), while the subscript-coupled Z recurrence is out of reach
// of any single-loop analysis (the paper's noted future work).
//
//===----------------------------------------------------------------------===//

#include "analysis/DistanceVector.h"
#include "analysis/LoopDataFlow.h"
#include "frontend/Parser.h"
#include "ir/PrettyPrinter.h"

#include <iostream>

using namespace ardf;

namespace {

void analyzeWrt(const Program &P, const DoLoopStmt &Body,
                const std::string &IV) {
  std::cout << "--- analysis of the loop body with respect to '" << IV
            << "' (other induction variables symbolic) ---\n";
  LoopDataFlow DF(P, Body, ProblemSpec::mustReachingDefs(), IV);
  const ReferenceUniverse &U = DF.universe();

  std::cout << "Linearized affine views:\n";
  for (const RefOccurrence &Occ : U.occurrences()) {
    std::cout << "  " << exprToString(*Occ.Ref) << " -> ";
    if (Occ.Affine)
      std::cout << Occ.Affine->toString(IV);
    else
      std::cout << "(not affine in " << IV << ")";
    std::cout << (Occ.IsDef ? "  [def]" : "  [use]")
              << (Occ.InSummary ? " [summary]" : "") << '\n';
  }

  std::vector<ReusePair> Pairs = DF.reusePairs(RefSelector::Uses);
  if (Pairs.empty()) {
    std::cout << "No recurrent accesses found with respect to '" << IV
              << "'.\n\n";
    return;
  }
  std::cout << "Recurrences:\n";
  for (const ReusePair &Pair : Pairs)
    std::cout << "  " << exprToString(*U.occurrence(Pair.SinkId).Ref)
              << " reuses " << exprToString(*U.occurrence(Pair.SourceId).Ref)
              << " at distance " << Pair.Distance << '\n';
  std::cout << '\n';
}

} // namespace

int main() {
  // Fig. 4, inner loop body analyzed with respect to each level.
  const char *Source = R"(
    array X[N, N];
    array Y[N, N];
    array Z[N, N];
    do j = 1, UB2 {
      do i = 1, UB1 {
        X[i+1, j] = X[i, j];
        Y[i, j+1] = Y[i, j-1];
        Z[i+1, j] = Z[i, j-1];
      }
    }
  )";
  Program P = parseOrDie(Source);
  std::cout << "Input nest (Fig. 4):\n" << programToString(P) << '\n';

  const auto *Outer = P.getFirstLoop();
  const auto *Inner = cast<DoLoopStmt>(Outer->getBody()[0].get());

  // The X recurrence (distance 1 in i) appears in the inner analysis;
  // the Y recurrence (distance 2 in j) when the same body is analyzed
  // with respect to j; Z in neither.
  analyzeWrt(P, *Inner, Inner->getIndVar());
  analyzeWrt(P, *Inner, Outer->getIndVar());

  std::cout << "The Z recurrence couples both induction variables "
               "simultaneously;\nno single-loop analysis can see it "
               "(Section 3.6). The distance-vector\nextension the paper "
               "sketches as future work (Section 6) finds it:\n\n";
  NestAnalysis NA = analyzeTightNest(P, *Outer);
  for (const VectorReuse &R : NA.Reuses)
    std::cout << "  " << exprToString(*R.Sink) << " reuses "
              << exprToString(*R.Source) << " at vector (outer "
              << R.OuterDistance << ", inner " << R.InnerDistance
              << ")\n";
  return 0;
}
