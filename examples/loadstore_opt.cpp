//===- examples/loadstore_opt.cpp - Figs. 6 and 7 transformations --------===//
//
// Part of ardf, a reproduction of Duesterwald, Gupta & Soffa, PLDI 1993.
//
// Redundant store elimination (Section 4.2.1, Fig. 6) and redundant load
// elimination (Section 4.2.2, Fig. 7), both validated by interpreting
// the original and transformed loops on identical inputs and comparing
// final memory plus access counts.
//
//===----------------------------------------------------------------------===//

#include "driver/ProgramAnalysisDriver.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/PrettyPrinter.h"
#include "transform/LoadElimination.h"
#include "transform/StoreElimination.h"

#include <iostream>

using namespace ardf;

namespace {

ExecStats measure(const Program &P, int64_t X) {
  Interpreter I(P);
  I.setScalar("x", X);
  I.seedArray("A", 1100, 17);
  I.run();
  return I.stats();
}

bool equivalent(const Program &A, const Program &B, int64_t X) {
  Interpreter IA(A), IB(B);
  IA.setScalar("x", X);
  IB.setScalar("x", X);
  IA.seedArray("A", 1100, 17);
  IB.seedArray("A", 1100, 17);
  IA.run();
  IB.run();
  return IA.state().Arrays == IB.state().Arrays;
}

} // namespace

int main() {
  // --- Fig. 6: the conditional store A[i+1] is 1-redundant. ---
  Program Fig6 = parseOrDie(R"(
    do i = 1, 1000 {
      A[i] = i + x;
      if (x == 0) { A[i+1] = 99; }
    }
  )");
  std::cout << "Fig. 6 input:\n" << programToString(Fig6) << '\n';

  // Transforms share per-loop analysis sessions through a driver.
  ProgramAnalysisDriver Fig6Driver(Fig6);
  StoreElimResult SR = eliminateRedundantStores(Fig6Driver);
  for (const std::string &Note : SR.Notes)
    std::cout << "  " << Note << '\n';
  std::cout << "Transformed (store removed, final " << SR.UnpeeledIterations
            << " iteration(s) unpeeled):\n"
            << programToString(SR.Transformed) << '\n';

  for (int64_t X : {0, 1}) {
    ExecStats Before = measure(Fig6, X);
    ExecStats After = measure(SR.Transformed, X);
    std::cout << "  x=" << X << ": stores " << Before.ArrayStores << " -> "
              << After.ArrayStores << ", state "
              << (equivalent(Fig6, SR.Transformed, X) ? "identical"
                                                      : "DIVERGED!")
              << '\n';
  }

  // --- Fig. 7: the conditional load A[i] is 1-redundant. ---
  Program Fig7 = parseOrDie(R"(
    do i = 1, 1000 {
      if (A[i] > 0) { y = y + A[i]; }
      A[i+1] = i * x;
    }
  )");
  std::cout << "\nFig. 7 input:\n" << programToString(Fig7) << '\n';

  ProgramAnalysisDriver Fig7Driver(Fig7);
  LoadElimResult LR = eliminateRedundantLoads(Fig7Driver);
  for (const std::string &Note : LR.Notes)
    std::cout << "  " << Note << '\n';
  std::cout << "Transformed (" << LR.TempsIntroduced
            << " temporaries introduced):\n"
            << programToString(LR.Transformed) << '\n';

  for (int64_t X : {0, 3}) {
    ExecStats Before = measure(Fig7, X);
    ExecStats After = measure(LR.Transformed, X);
    std::cout << "  x=" << X << ": loads " << Before.ArrayLoads << " -> "
              << After.ArrayLoads << ", state "
              << (equivalent(Fig7, LR.Transformed, X) ? "identical"
                                                      : "DIVERGED!")
              << '\n';
  }
  return 0;
}
